"""CNF preprocessing: unit propagation, pure literals, subsumption.

A light inprocessing front end for the CDCL solver — useful on the Tseitin
encodings the equivalence engines generate, which contain many unit-forced
and pure auxiliary variables.
"""

from ..errors import SatError
from .cnf import Cnf


class SimplifyResult:
    """Outcome of CNF simplification.

    ``cnf`` is the reduced formula (same variable numbering); ``assignment``
    records literals fixed by unit propagation / pure-literal elimination;
    ``unsat`` is True when a contradiction surfaced.
    """

    def __init__(self, cnf, assignment, unsat, stats):
        self.cnf = cnf
        self.assignment = assignment
        self.unsat = unsat
        self.stats = stats


def simplify(cnf, rounds=10):
    """Simplify a :class:`Cnf`; returns a :class:`SimplifyResult`."""
    clauses = [list(c) for c in cnf.clauses]
    assignment = {}  # var -> bool
    stats = {"units": 0, "pures": 0, "subsumed": 0, "strengthened": 0}

    def value(lit):
        v = assignment.get(abs(lit))
        if v is None:
            return None
        return v == (lit > 0)

    for _ in range(rounds):
        changed = False
        # --- unit propagation -------------------------------------------
        while True:
            unit = None
            next_clauses = []
            for clause in clauses:
                live = []
                satisfied = False
                for lit in clause:
                    v = value(lit)
                    if v is True:
                        satisfied = True
                        break
                    if v is None:
                        live.append(lit)
                if satisfied:
                    continue
                if not live:
                    return SimplifyResult(Cnf(cnf.num_vars), assignment,
                                          True, stats)
                if len(live) == 1 and unit is None:
                    unit = live[0]
                next_clauses.append(live)
            clauses = next_clauses
            if unit is None:
                break
            assignment[abs(unit)] = unit > 0
            stats["units"] += 1
            changed = True
        # --- pure literals ------------------------------------------------
        polarity = {}
        for clause in clauses:
            for lit in clause:
                var = abs(lit)
                seen = polarity.get(var)
                if seen is None:
                    polarity[var] = lit > 0
                elif seen != (lit > 0):
                    polarity[var] = "both"
        for var, pol in polarity.items():
            if pol != "both" and var not in assignment:
                assignment[var] = bool(pol)
                stats["pures"] += 1
                changed = True
        if any(pol != "both" for pol in polarity.values()):
            clauses = [
                clause for clause in clauses
                if not any(value(lit) is True for lit in clause)
            ]
        # --- subsumption and self-subsuming resolution -------------------
        clauses, sub, strengthened = _subsume(clauses)
        stats["subsumed"] += sub
        stats["strengthened"] += strengthened
        if sub or strengthened:
            changed = True
        if not changed:
            break
    reduced = Cnf(cnf.num_vars)
    for clause in clauses:
        reduced.add_clause(clause)
    return SimplifyResult(reduced, assignment, False, stats)


def _subsume(clauses):
    """Remove subsumed clauses; strengthen via self-subsuming resolution."""
    clause_sets = [frozenset(c) for c in clauses]
    keep = [True] * len(clauses)
    subsumed = 0
    strengthened = 0
    # Index: literal -> clause indices containing it (smallest watch lists).
    by_lit = {}
    for idx, cs in enumerate(clause_sets):
        for lit in cs:
            by_lit.setdefault(lit, []).append(idx)
    order = sorted(range(len(clauses)), key=lambda i: len(clause_sets[i]))
    for idx in order:
        if not keep[idx]:
            continue
        small = clause_sets[idx]
        # Candidates share the rarest literal of the small clause.
        pivot = min(small, key=lambda l: len(by_lit.get(l, ())))
        for other in by_lit.get(pivot, ()):  # supersets of `small`
            if other == idx or not keep[other]:
                continue
            if small <= clause_sets[other]:
                keep[other] = False
                subsumed += 1
        # Self-subsuming resolution: small \ {l} ∪ {-l} ⊆ other  =>
        # remove -l from other.
        for lit in small:
            probe = (small - {lit}) | {-lit}
            for other in by_lit.get(-lit, ()):
                if other == idx or not keep[other]:
                    continue
                if probe <= clause_sets[other]:
                    new_clause = clause_sets[other] - {-lit}
                    if new_clause and new_clause != clause_sets[other]:
                        clause_sets[other] = frozenset(new_clause)
                        strengthened += 1
    result = [sorted(clause_sets[i], key=abs)
              for i in range(len(clauses)) if keep[i]]
    return result, subsumed, strengthened


def models_preserved_vars(result, variables):
    """Assignment restricted to ``variables`` (helper for tests/clients)."""
    return {v: result.assignment[v] for v in variables
            if v in result.assignment}
