"""CNF formula container with DIMACS serialization.

Literals follow the DIMACS convention: variables are positive integers,
negative integers are negated literals.  The container is solver-agnostic.
"""

from ..errors import SatError


class Cnf:
    """A CNF formula: a variable counter plus a list of clauses."""

    def __init__(self, num_vars=0):
        self.num_vars = num_vars
        self.clauses = []

    def new_var(self):
        """Allocate a fresh variable; returns its (positive) index."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count):
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals):
        """Add a clause (a non-empty iterable of DIMACS literals)."""
        clause = []
        for lit in literals:
            if not isinstance(lit, int) or lit == 0:
                raise SatError("bad literal: {!r}".format(lit))
            if abs(lit) > self.num_vars:
                raise SatError(
                    "literal {} references unallocated variable".format(lit)
                )
            clause.append(lit)
        if not clause:
            raise SatError("empty clause added (formula trivially UNSAT)")
        self.clauses.append(clause)

    def add_clauses(self, clauses):
        for clause in clauses:
            self.add_clause(clause)

    def extend(self, other):
        """Append another formula's clauses (variables must be pre-merged)."""
        if other.num_vars > self.num_vars:
            self.num_vars = other.num_vars
        self.clauses.extend(list(c) for c in other.clauses)

    def to_dimacs(self):
        lines = ["p cnf {} {}".format(self.num_vars, len(self.clauses))]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text):
        cnf = None
        pending = []
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise SatError("bad DIMACS header: {!r}".format(line))
                cnf = cls(int(parts[2]))
                continue
            if cnf is None:
                raise SatError("clause before DIMACS header")
            for tok in line.split():
                lit = int(tok)
                if lit == 0:
                    cnf.add_clause(pending)
                    pending = []
                else:
                    pending.append(lit)
        if cnf is None:
            raise SatError("missing DIMACS header")
        if pending:
            cnf.add_clause(pending)
        return cnf

    def __len__(self):
        return len(self.clauses)

    def __repr__(self):
        return "Cnf({} vars, {} clauses)".format(self.num_vars, len(self.clauses))
