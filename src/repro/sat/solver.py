"""A CDCL SAT solver: two-watched literals, first-UIP learning, VSIDS,
phase saving, Luby restarts and activity-based learned-clause reduction.

The solver supports incremental solving under assumptions, which is what the
SAT refinement backend of the signal-correspondence engine needs: frame-0
equivalence assumptions are added as (retractable) assumption literals, and
each candidate pair becomes one ``solve(assumptions=...)`` query.

The incremental invariant
-------------------------

``add_clause``/``add_cnf`` and ``solve(assumptions=...)`` may be interleaved
freely, and the sequence must behave exactly like a fresh solver given the
accumulated clause set:

* **learned clauses, VSIDS activities, saved phases and watch lists are
  preserved across ``solve`` calls** — assumptions enter the search as
  decisions, so conflict analysis only ever resolves over problem and
  learned clauses, which makes every learned clause a logical consequence
  of the *base* formula alone (never of the assumptions).  Keeping them is
  therefore sound for any later query, including queries under different
  assumptions;
* a query that is UNSAT *under its assumptions* leaves the base formula
  intact and reusable (``ok`` stays true); only a top-level conflict marks
  the base formula itself unsatisfiable;
* a ``solve`` aborted by ``conflict_budget`` (returning ``None``) backtracks
  to the root and leaves the solver fully reusable — clauses learned before
  the abort are kept;
* ``add_clause`` backtracks to the root first, so a previous model is
  invalidated by any mutation (re-``solve`` to get a fresh one);
* consecutive queries sharing an assumption *prefix* reuse the trail: the
  matching decision levels and their propagation cones survive between
  ``solve`` calls (including after an UNSAT-under-assumptions answer), which
  is invisible semantically but makes activation-literal query batches cheap;
* :meth:`Solver.simplify` physically deletes root-satisfied clauses — the
  retirement step for activation-literal-guarded clause groups.

``tests/sat/test_incremental.py`` property-checks this invariant against
fresh re-solves of the accumulated CNF.

Internal literal encoding: variable ``v`` (0-based) has literals ``2v``
(positive) and ``2v + 1`` (negative); the public API speaks DIMACS integers.
"""

from ..errors import SatError

TRUE = 1
FALSE = 0
UNASSIGNED = -1


def _to_internal(dimacs_lit):
    var = abs(dimacs_lit) - 1
    return 2 * var + (1 if dimacs_lit < 0 else 0)


def _to_dimacs(internal_lit):
    var = (internal_lit >> 1) + 1
    return -var if internal_lit & 1 else var


def luby(i):
    """The Luby restart sequence (1,1,2,1,1,2,4,...), 1-based index."""
    k = 1
    while (1 << (k + 1)) - 1 <= i:
        k += 1
    if i == (1 << k) - 1:
        return 1 << (k - 1)
    return luby(i - ((1 << k) - 1))


class Solver:
    """CDCL solver over 0-based internal variables, DIMACS at the API."""

    def __init__(self):
        self.num_vars = 0
        self.clauses = []          # list of lists of internal literals
        self.learned = []
        self.watches = []          # internal lit -> list of clause refs
        self.assign = []           # var -> TRUE/FALSE/UNASSIGNED
        self.level = []            # var -> decision level
        self.reason = []           # var -> implying clause or None
        self.trail = []
        self.trail_lim = []
        self.activity = []
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.cla_inc = 1.0
        self.cla_decay = 0.999
        self.saved_phase = []
        self.ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.max_learned = 4000

    # -- public API ------------------------------------------------------

    def new_var(self):
        """Allocate a variable; returns its DIMACS index."""
        self.num_vars += 1
        self.assign.append(UNASSIGNED)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.saved_phase.append(False)
        self.watches.append([])
        self.watches.append([])
        return self.num_vars

    def ensure_vars(self, count):
        while self.num_vars < count:
            self.new_var()

    def add_clause(self, dimacs_literals):
        """Add a problem clause; returns False if the formula became UNSAT."""
        if not self.ok:
            return False
        # Incremental use: clauses are always added at the root level (the
        # trail may still hold the previous solve's model).
        self._backtrack(0)
        literals = []
        seen = set()
        for lit in dimacs_literals:
            if lit == 0 or not isinstance(lit, int):
                raise SatError("bad literal: {!r}".format(lit))
            self.ensure_vars(abs(lit))
            internal = _to_internal(lit)
            if internal ^ 1 in seen:
                return True  # tautology
            if internal in seen:
                continue
            seen.add(internal)
            # Top-level simplification.
            value = self._lit_value(internal)
            if value == TRUE and self.level[internal >> 1] == 0:
                return True
            if value == FALSE and self.level[internal >> 1] == 0:
                continue
            literals.append(internal)
        if not literals:
            self.ok = False
            return False
        if len(literals) == 1:
            if not self._enqueue(literals[0], None):
                self.ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self.ok = False
                return False
            return True
        clause = literals
        self.clauses.append(clause)
        self._watch_clause(clause)
        return True

    def add_cnf(self, cnf):
        """Add every clause of a :class:`~repro.sat.cnf.Cnf`."""
        self.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            if not self.add_clause(clause):
                return False
        return self.ok

    def solve(self, assumptions=(), conflict_budget=None):
        """Solve under assumptions; True/False, or None on budget exhaustion.

        Assumptions occupy the first decision levels.  A conflict whose
        analysis backtracks past an assumption makes that assumption evaluate
        to false when it is re-placed, at which point the query is UNSAT
        under the assumptions (the base formula stays intact and reusable).
        """
        if not self.ok:
            return False
        conflict_count_start = self.conflicts
        conflicts_at_restart = self.conflicts
        restart_idx = 1
        limit = luby(restart_idx) * 64
        assumption_lits = [_to_internal(lit) for lit in assumptions]
        for lit in assumption_lits:
            self.ensure_vars((lit >> 1) + 1)
        # Trail reuse: keep the longest decision-level prefix whose decision
        # literals re-place these assumptions in order, so the propagation
        # cone of a shared assumption prefix (e.g. an activation literal
        # enabling a large constraint group) is not recomputed per query.
        keep = 0
        while keep < self._decision_level() and keep < len(assumption_lits):
            start = self.trail_lim[keep]
            end = (self.trail_lim[keep + 1]
                   if keep + 1 < len(self.trail_lim) else len(self.trail))
            if start < end and self.trail[start] == assumption_lits[keep]:
                keep += 1
            else:
                break
        self._backtrack(keep)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                if self._decision_level() == 0:
                    # Conflict from top-level facts alone: base formula UNSAT.
                    self.ok = False
                    return False
                learnt, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                self._record_learnt(learnt)
                self._decay_activities()
                if conflict_budget is not None and (
                    self.conflicts - conflict_count_start
                ) >= conflict_budget:
                    self._backtrack(0)
                    return None
                if self.conflicts - conflicts_at_restart >= limit:
                    restart_idx += 1
                    limit = luby(restart_idx) * 64
                    conflicts_at_restart = self.conflicts
                    self.restarts += 1
                    self._backtrack(0)
                if len(self.learned) > self.max_learned:
                    self._reduce_learned()
            else:
                # Place pending assumptions as decisions.
                if self._decision_level() < len(assumption_lits):
                    lit = assumption_lits[self._decision_level()]
                    value = self._lit_value(lit)
                    if value == TRUE:
                        # Already implied: open an empty decision level so the
                        # level/assumption-index correspondence is kept.
                        self.trail_lim.append(len(self.trail))
                        continue
                    if value == FALSE:
                        # UNSAT under the assumptions.  The trail is left at
                        # the already-placed prefix so the next query can
                        # reuse it (solve() re-validates the prefix anyway).
                        return False
                    self.trail_lim.append(len(self.trail))
                    self._enqueue(lit, None)
                    continue
                lit = self._pick_branch()
                if lit is None:
                    return True
                self.decisions += 1
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, None)

    def model(self):
        """Assignment dict {dimacs_var: bool} after a satisfiable solve."""
        return {
            v + 1: self.assign[v] == TRUE
            for v in range(self.num_vars)
            if self.assign[v] != UNASSIGNED
        }

    def value(self, dimacs_var):
        v = self.assign[dimacs_var - 1]
        return None if v == UNASSIGNED else v == TRUE

    def simplify(self):
        """Physically remove clauses satisfied at the root level.

        The incremental engine retires an activation-literal-guarded clause
        group by adding the unit ``[-act]``; the group's clauses are then
        permanently satisfied but still sit in the watch lists, taxing every
        later propagation.  ``simplify`` (MiniSat's ``Simplify``) drops
        satisfied problem and learned clauses, strips permanently false
        literals from the survivors, and rebuilds the watch lists — all of
        which preserves the incremental invariant because root facts never
        change again.  Returns ``False`` iff the formula is UNSAT.
        """
        if not self.ok:
            return False
        self._backtrack(0)
        if self._propagate() is not None:
            self.ok = False
            return False
        for lit in self.trail:
            # Root facts are never resolved over again (conflict analysis
            # skips level-0 literals), so their reasons can be dropped.
            self.reason[lit >> 1] = None
        for store in (self.clauses, self.learned):
            kept = []
            for clause in store:
                if any(self._lit_value(lit) == TRUE for lit in clause):
                    continue
                # Propagation ran to fixpoint, so a surviving clause keeps
                # at least two non-false literals.
                clause[:] = [l for l in clause
                             if self._lit_value(l) != FALSE]
                kept.append(clause)
            store[:] = kept
        for lit in range(2 * self.num_vars):
            self.watches[lit] = []
        for clause in self.clauses:
            self._watch_clause(clause)
        for clause in self.learned:
            self._watch_clause(clause)
        return True

    def stats(self):
        """Snapshot of search-effort counters and database sizes.

        Counters (``conflicts``, ``decisions``, ``propagations``,
        ``restarts``) accumulate over the solver's lifetime — across
        incremental ``solve`` calls — which is what lets callers attribute
        effort to individual refinement rounds by differencing snapshots.
        """
        return {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned": len(self.learned),
            "clauses": len(self.clauses),
            "num_vars": self.num_vars,
        }

    # -- internals ---------------------------------------------------------

    def _lit_value(self, lit):
        v = self.assign[lit >> 1]
        if v == UNASSIGNED:
            return UNASSIGNED
        return v ^ (lit & 1)

    def _watch_clause(self, clause):
        self.watches[clause[0] ^ 1].append(clause)
        self.watches[clause[1] ^ 1].append(clause)

    def _enqueue(self, lit, reason):
        value = self._lit_value(lit)
        if value != UNASSIGNED:
            return value == TRUE
        var = lit >> 1
        self.assign[var] = TRUE if (lit & 1) == 0 else FALSE
        self.level[var] = self._decision_level()
        self.reason[var] = reason
        self.saved_phase[var] = (lit & 1) == 0
        self.trail.append(lit)
        return True

    def _decision_level(self):
        return len(self.trail_lim)

    def _propagate(self):
        head = getattr(self, "_qhead", 0)
        # Reset stale queue head after backtracking.
        if head > len(self.trail):
            head = len(self.trail)
        while head < len(self.trail):
            lit = self.trail[head]
            head += 1
            self.propagations += 1
            false_lit = lit ^ 1
            watching = self.watches[lit]
            self.watches[lit] = []
            i = 0
            while i < len(watching):
                clause = watching[i]
                i += 1
                # Make sure the false literal is at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == TRUE:
                    self.watches[lit].append(clause)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != FALSE:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches[clause[1] ^ 1].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                self.watches[lit].append(clause)
                if not self._enqueue(first, clause):
                    # Conflict: restore remaining watchers and report.
                    self.watches[lit].extend(watching[i:])
                    self._qhead = len(self.trail)
                    return clause
            self._qhead = head
        self._qhead = head
        return None

    def _analyze(self, conflict):
        """First-UIP conflict analysis; returns (learnt_clause, back_level)."""
        learnt = []
        seen = [False] * self.num_vars
        counter = 0
        lit = None
        clause = conflict
        trail_idx = len(self.trail) - 1
        current_level = self._decision_level()
        while True:
            for q in clause:
                if lit is not None and q == lit:
                    continue
                var = q >> 1
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[self.trail[trail_idx] >> 1]:
                trail_idx -= 1
            lit = self.trail[trail_idx]
            var = lit >> 1
            seen[var] = False
            trail_idx -= 1
            counter -= 1
            if counter == 0:
                break
            clause = self.reason[var]
        learnt.insert(0, lit ^ 1)
        # Minimize: drop literals implied by the rest (MiniSat basic mode).
        learnt = self._minimize(learnt)
        if len(learnt) == 1:
            back_level = 0
        else:
            # Find the second-highest level in the clause.
            max_i = 1
            for i in range(2, len(learnt)):
                if self.level[learnt[i] >> 1] > self.level[learnt[max_i] >> 1]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            back_level = self.level[learnt[1] >> 1]
        return learnt, back_level

    def _minimize(self, learnt):
        seen = {q >> 1 for q in learnt}
        result = [learnt[0]]
        for q in learnt[1:]:
            reason = self.reason[q >> 1]
            if reason is None:
                result.append(q)
                continue
            redundant = all(
                (r >> 1) in seen or self.level[r >> 1] == 0
                for r in reason
                if r != (q ^ 1)
            )
            if not redundant:
                result.append(q)
        return result

    def _record_learnt(self, learnt):
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        self.learned.append(learnt)
        self._watch_clause(learnt)
        self._enqueue(learnt[0], learnt)

    def _backtrack(self, target_level):
        if self._decision_level() <= target_level:
            return
        boundary = self.trail_lim[target_level]
        for lit in reversed(self.trail[boundary:]):
            var = lit >> 1
            self.assign[var] = UNASSIGNED
            self.reason[var] = None
        del self.trail[boundary:]
        del self.trail_lim[target_level:]
        self._qhead = len(self.trail)

    def _pick_branch(self):
        best = None
        best_act = -1.0
        for var in range(self.num_vars):
            if self.assign[var] == UNASSIGNED and self.activity[var] > best_act:
                best = var
                best_act = self.activity[var]
        if best is None:
            return None
        return 2 * best + (0 if self.saved_phase[best] else 1)

    def _bump_var(self, var):
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(self.num_vars):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _decay_activities(self):
        self.var_inc /= self.var_decay

    def _reduce_learned(self):
        """Drop half the learned clauses, keeping short ones and reasons."""
        locked = {id(self.reason[lit >> 1]) for lit in self.trail
                  if self.reason[lit >> 1] is not None}
        self.learned.sort(key=len)
        keep, drop = [], set()
        half = len(self.learned) // 2
        for i, clause in enumerate(self.learned):
            if i < half or len(clause) <= 2 or id(clause) in locked:
                keep.append(clause)
            else:
                drop.add(id(clause))
        if not drop:
            return
        self.learned = keep
        for lit in range(2 * self.num_vars):
            self.watches[lit] = [
                c for c in self.watches[lit] if id(c) not in drop
            ]
