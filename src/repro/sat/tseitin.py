"""Tseitin encoding of combinational circuit frames into CNF.

Every net gets a CNF variable (the paper's §6 "techniques based on the
introduction of extra variables representing intermediate signals" is exactly
this), and each gate contributes the standard defining clauses.
"""

from ..errors import NetlistError
from ..netlist.circuit import GateType
from .cnf import Cnf


class TseitinEncoder:
    """Encodes one combinational time frame of a circuit.

    ``leaves`` optionally pre-assigns CNF variables to input/register nets
    (needed when unrolling several frames that share variables).  The
    variable of each net is available in :attr:`var_of` afterwards.
    """

    def __init__(self, cnf=None):
        self.cnf = cnf if cnf is not None else Cnf()

    def encode_frame(self, circuit, leaves=None, nets=None):
        """Encode a frame; returns ``{net: dimacs_var}`` for every net.

        When ``nets`` is given, only the cones of those nets are encoded.
        """
        var_of = {}
        for net in list(circuit.inputs) + list(circuit.registers):
            if leaves and net in leaves:
                var_of[net] = leaves[net]
            else:
                var_of[net] = self.cnf.new_var()
        order = circuit.topo_order()
        if nets is not None:
            from ..netlist.cones import transitive_fanin

            cone = transitive_fanin(circuit, list(nets))
            order = [name for name in order if name in cone]
        for name in order:
            gate = circuit.gates[name]
            out = self.cnf.new_var()
            var_of[name] = out
            self._encode_gate(gate.gtype, out, [var_of[f] for f in gate.fanins])
        return var_of

    def _encode_gate(self, gtype, out, fanins):
        add = self.cnf.add_clause
        if gtype in (GateType.AND, GateType.NAND):
            y = out if gtype is GateType.AND else -out
            for f in fanins:
                add([-y, f])
            add([y] + [-f for f in fanins])
        elif gtype in (GateType.OR, GateType.NOR):
            y = out if gtype is GateType.OR else -out
            for f in fanins:
                add([y, -f])
            add([-y] + list(fanins))
        elif gtype in (GateType.XOR, GateType.XNOR):
            # Chain through intermediates for arity > 2.
            acc = fanins[0]
            for i, f in enumerate(fanins[1:]):
                is_last = i == len(fanins) - 2
                target = out if is_last else self.cnf.new_var()
                y = target
                if is_last and gtype is GateType.XNOR:
                    y = -target
                add([-y, acc, f])
                add([-y, -acc, -f])
                add([y, acc, -f])
                add([y, -acc, f])
                acc = target
            if len(fanins) == 1:  # degenerate, arity check prevents this
                raise NetlistError("XOR gate with single fanin")
        elif gtype is GateType.NOT:
            add([-out, -fanins[0]])
            add([out, fanins[0]])
        elif gtype is GateType.BUF:
            add([-out, fanins[0]])
            add([out, -fanins[0]])
        elif gtype is GateType.CONST0:
            add([-out])
        elif gtype is GateType.CONST1:
            add([out])
        else:
            raise NetlistError("unknown gate type: {!r}".format(gtype))

    def new_var(self):
        return self.cnf.new_var()

    def add_clause(self, literals):
        self.cnf.add_clause(literals)

    def equal_var(self, a, b):
        """A variable constrained to ``a == b`` (an XNOR output)."""
        y = self.cnf.new_var()
        self.cnf.add_clause([-y, a, -b])
        self.cnf.add_clause([-y, -a, b])
        self.cnf.add_clause([y, a, b])
        self.cnf.add_clause([y, -a, -b])
        return y


def encode_miter(spec, impl, match_inputs="name"):
    """CNF that is satisfiable iff some input makes two *combinational*
    circuits differ on some output pair.

    Both circuits must be register-free.  Returns ``(cnf, spec_vars,
    impl_vars)``; the caller can feed the CNF to :class:`Solver`.
    """
    if spec.num_registers or impl.num_registers:
        raise NetlistError("encode_miter expects combinational circuits")
    if len(spec.outputs) != len(impl.outputs):
        raise NetlistError("output count mismatch")
    enc = TseitinEncoder()
    spec_vars = enc.encode_frame(spec)
    if match_inputs == "name":
        leaves = {net: spec_vars[net] for net in spec.inputs}
    else:
        leaves = dict(zip(impl.inputs, (spec_vars[n] for n in spec.inputs)))
    impl_vars = enc.encode_frame(impl, leaves=leaves)
    diff_lits = []
    for s_out, i_out in zip(spec.outputs, impl.outputs):
        d = enc.equal_var(spec_vars[s_out], impl_vars[i_out])
        diff_lits.append(-d)
    enc.add_clause(diff_lits)
    return enc.cnf, spec_vars, impl_vars
