"""Depth scheduling and budgets for the k-induction engine.

A :class:`DepthSchedule` owns everything about *when* the engine is allowed
to keep going: the depth sequence itself (``start_depth``/``step``/
``max_depth``), the wall-clock deadline, an optional clause ("node") budget
on the growing CNF, and the cooperative ``cancel_check`` polled between
SAT queries.  It also carries the ``progress`` hook and stamps every
``induction_round`` event with a monotonically increasing round counter, so
the engine proper never touches a clock or an event bus directly.
"""

import time

from ..errors import ResourceBudgetExceeded

#: Event kind emitted once per completed induction depth.
PROGRESS_INDUCTION_ROUND = "induction_round"


class DepthSchedule:
    """The depth sequence plus the budgets that may cut it short.

    ``max_depth`` is the largest induction depth attempted (inclusive).
    ``clause_limit`` bounds the size of the incremental CNF — the analogue
    of the BDD engines' node budgets.  ``cancel_check`` is polled by
    :meth:`check`; returning true aborts with
    :class:`~repro.errors.ResourceBudgetExceeded`, which the engine maps to
    an inconclusive result exactly like the other engines do.
    """

    def __init__(self, max_depth=16, start_depth=1, step=1, time_limit=None,
                 clause_limit=None, cancel_check=None, progress=None):
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if start_depth < 1:
            raise ValueError("start_depth must be >= 1")
        if step < 1:
            raise ValueError("step must be >= 1")
        self.max_depth = max_depth
        self.start_depth = start_depth
        self.step = step
        self.time_limit = time_limit
        self.clause_limit = clause_limit
        self.cancel_check = cancel_check
        self.progress = progress
        self.rounds = 0
        self._started = None
        self._deadline = None

    def start(self):
        """Arm the wall-clock budget; called once per engine run."""
        self._started = time.monotonic()
        self._deadline = (None if self.time_limit is None
                          else self._started + self.time_limit)
        return self

    def elapsed(self):
        if self._started is None:
            return 0.0
        return time.monotonic() - self._started

    def depths(self):
        """Yield the induction depths to attempt, checking budgets between."""
        if self._started is None:
            self.start()
        depth = self.start_depth
        while depth <= self.max_depth:
            self.check()
            yield depth
            depth += self.step

    __iter__ = depths

    def check(self, clauses=None):
        """Raise :class:`ResourceBudgetExceeded` if any budget is spent."""
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise ResourceBudgetExceeded("induction time budget exhausted")
        if self.cancel_check is not None and self.cancel_check():
            raise ResourceBudgetExceeded("cancelled")
        if (self.clause_limit is not None and clauses is not None
                and clauses > self.clause_limit):
            raise ResourceBudgetExceeded(
                "induction clause budget exhausted ({} > {})".format(
                    clauses, self.clause_limit))

    def emit_round(self, depth, **data):
        """Publish one ``induction_round`` progress event."""
        self.rounds += 1
        if self.progress is not None:
            self.progress(PROGRESS_INDUCTION_ROUND, depth=depth,
                          round=self.rounds, **data)


__all__ = ["DepthSchedule", "PROGRESS_INDUCTION_ROUND"]
