"""k-induction over the product miter: a complete-leaning third engine.

The correspondence fixed point (BDD or SAT backend) is sound but
incomplete; until now its only complete fallback was state-space traversal.
This engine closes inconclusive instances without traversal by temporal
induction on the product machine:

* **base case** — bounded model checking from the initial state: the
  property P ("all corresponding output pairs agree") must hold on frames
  ``0..k``;
* **inductive step** — ``k+1`` frames from an *arbitrary* state: if P (and
  the strengthening candidates C) hold on frames ``0..k-1`` and all ``k+1``
  states are pairwise distinct (the simple-path/uniqueness constraints that
  make the method complete on finite systems), then P∧C must hold on frame
  ``k``.  UNSAT proves P invariant.

Both cases run on **one** incremental solver per depth schedule — frames,
output-difference selectors, uniqueness clauses and strengthening clauses
are appended monotonically; everything retractable is guarded by activation
literals and assumed per query, exactly the ``core/satbackend.py`` idiom.

Strengthening: a (possibly partial) correspondence partition is converted
into register-level candidate invariants (:mod:`repro.induction.invariant`).
Candidates are *obligations*, never axioms — each is base-checked on every
frame from the initial state and its consecution is part of the step
target, so wrong candidates are dropped (CEGAR on replayed counterexamples)
rather than trusted, and the proof stays sound for arbitrary partitions.

Soundness sketch: suppose the base holds on ``0..k``, the step is UNSAT at
depth ``k``, yet P fails somewhere reachable.  Take a *shortest* initial
path to a P∧C violation.  Its length exceeds ``k`` (base), its states are
pairwise distinct (a repeated state would shortcut a shorter path), and
P∧C holds on every proper prefix frame (else a shorter violation) — so its
last ``k+1`` states satisfy the step query, contradiction.  Hence P∧C — and
in particular P — holds in every reachable state.
"""

import time

from ..errors import ResourceBudgetExceeded, VerificationError
from ..netlist.product import build_product
from ..netlist.simulate import CompiledSim, bit_parallel_eval
from ..netlist.unroll import unroll
from ..reach.result import CexTrace, SecResult
from ..sat.solver import Solver
from ..sat.tseitin import TseitinEncoder
from ..core.cexsplit import replay_pattern
from ..core.satbackend import _SOLVER_COUNTERS, _outputs_proved_sat, SatCorrespondence
from .invariant import (
    InvariantSet,
    candidates_from_classes,
    candidates_from_simulation,
)
from .schedule import DepthSchedule

#: Event emitted by the combined mode when an inconclusive fixed point
#: hands its partition to induction instead of traversal.
INDUCTION_FALLBACK = "induction_fallback"


class KInductionEngine:
    """Configurable k-induction SEC engine (``core/engine.py`` protocol).

    ``strengthen`` selects the candidate source: an explicit ``partition``
    (correspondence classes), else random-simulation register signatures;
    ``strengthen=False`` runs plain k-induction.  ``max_depth``,
    ``time_limit`` and ``clause_limit`` feed the
    :class:`~repro.induction.schedule.DepthSchedule`; ``progress`` /
    ``cancel_check`` are the service-layer hooks shared with the other
    engines.
    """

    def __init__(self, max_depth=16, strengthen=True, partition=None,
                 seed=2024, sim_frames=24, sim_width=32, time_limit=None,
                 clause_limit=None, progress=None, cancel_check=None):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.strengthen = strengthen
        self.partition = partition
        self.seed = seed
        self.sim_frames = sim_frames
        self.sim_width = sim_width
        self.time_limit = time_limit
        self.clause_limit = clause_limit
        self.progress = progress
        self.cancel_check = cancel_check

    # -- public API ---------------------------------------------------------

    def verify(self, spec, impl, match_inputs="name", match_outputs="order"):
        """Check two sequential circuits; returns a :class:`SecResult`."""
        product = build_product(spec, impl, match_inputs=match_inputs,
                                match_outputs=match_outputs)
        return self.verify_product(product)

    def verify_product(self, product):
        start = time.monotonic()
        self._reset(product)
        self.schedule.start()
        try:
            return self._run(start)
        except ResourceBudgetExceeded as exc:
            return self._result(None, start, {"aborted": str(exc)})

    # -- per-run state ------------------------------------------------------

    def _reset(self, product):
        self.product = product
        self.circuit = product.circuit.copy()
        self.circuit.validate()
        self.schedule = DepthSchedule(
            max_depth=self.max_depth, time_limit=self.time_limit,
            clause_limit=self.clause_limit, cancel_check=self.cancel_check,
            progress=self.progress)
        self.stats = {
            "solver_constructions": 0,
            "frame_encodings": 0,
            "sat_queries": 0,
            "base_queries": 0,
            "step_queries": 0,
            "cex_patterns": 0,
        }
        for key in _SOLVER_COUNTERS:
            self.stats[key] = 0
        self._csim = CompiledSim(self.circuit)
        self.invariants = InvariantSet(self._candidates())
        self._candidate_source = self._source_label()
        self._enc = None
        self._solver = None
        self._frames = []
        self._diff = []
        self._init_act = None
        self._uniq_act = None
        self._clause_mark = 0
        self._last_depth = 0

    def _candidates(self):
        if not self.strengthen:
            return []
        if self.partition is not None:
            return candidates_from_classes(self.partition, self.circuit)
        return candidates_from_simulation(
            self.circuit, seed=self.seed, sim_frames=self.sim_frames,
            sim_width=self.sim_width, compiled=self._csim)

    def _source_label(self):
        if not self.strengthen:
            return "none"
        return "partition" if self.partition is not None else "simulation"

    # -- incremental CNF plumbing -------------------------------------------

    def _flush(self):
        """Mirror newly encoded clauses into the one live solver."""
        clauses = self._enc.cnf.clauses
        self._solver.ensure_vars(self._enc.cnf.num_vars)
        ok = True
        while self._clause_mark < len(clauses):
            ok = self._solver.add_clause(clauses[self._clause_mark]) and ok
            self._clause_mark += 1
        if not ok:
            raise VerificationError(
                "k-induction CNF became unsatisfiable at root level")

    def _query(self, assumptions):
        self.schedule.check(clauses=len(self._enc.cnf.clauses))
        self.stats["sat_queries"] += 1
        return self._solver.solve(assumptions=assumptions)

    def _retire(self, candidates):
        """Retire dropped candidates' activation groups, satbackend-style."""
        for cand in candidates:
            self._enc.add_clause([-cand.act])
        self._flush()
        self._solver.simplify()

    def _lit_value(self, var):
        return bool(self._solver.value(var))

    # -- frame construction -------------------------------------------------

    def _setup(self):
        self._enc = TseitinEncoder()
        self._solver = Solver()
        self.stats["solver_constructions"] += 1
        self.invariants.bind(self._enc)
        frame0 = self._enc.encode_frame(self.circuit)
        self.stats["frame_encodings"] += 1
        self._frames.append(frame0)
        # Initial-state units, guarded so only base-case queries see them.
        self._init_act = self._enc.new_var()
        for net, reg in self.circuit.registers.items():
            var = frame0[net]
            self._enc.add_clause([var if reg.init else -var, -self._init_act])
        if self.circuit.registers:
            self._uniq_act = self._enc.new_var()
        self._diff.append(self._diff_selector(frame0))
        self._flush()

    def _diff_selector(self, frame_vars):
        """A variable equivalent to "some output pair differs" (both
        directions, so it can be assumed positively in base queries and
        negatively as the step's per-frame P assumption)."""
        enc = self._enc
        diff_lits = [-enc.equal_var(frame_vars[s_out], frame_vars[i_out])
                     for s_out, i_out in self.product.output_pairs]
        any_diff = enc.new_var()
        for lit in diff_lits:
            enc.add_clause([-lit, any_diff])
        enc.add_clause([-any_diff] + diff_lits)
        return any_diff

    def _encode_next_frame(self):
        """Encode one more frame; the previous frame becomes an assumed
        (LHS) frame: strengthening clauses and uniqueness constraints are
        appended for it before the new frame's diff selector."""
        prev = self._frames[-1]
        self.invariants.assert_frame(prev)
        leaves = {net: prev[reg.data_in]
                  for net, reg in self.circuit.registers.items()}
        frame = self._enc.encode_frame(self.circuit, leaves=leaves)
        self.stats["frame_encodings"] += 1
        self._frames.append(frame)
        self._add_uniqueness(len(self._frames) - 1)
        self._diff.append(self._diff_selector(frame))
        self._flush()

    def _add_uniqueness(self, f):
        """Simple-path constraints: frame ``f`` differs from every earlier
        frame in at least one register (skipped for register-free products,
        where an all-states pass at depth 0 is already decisive)."""
        if self._uniq_act is None:
            return
        enc = self._enc
        regs = list(self.circuit.registers)
        for i in range(f):
            d_lits = [-enc.equal_var(self._frames[i][r], self._frames[f][r])
                      for r in regs]
            enc.add_clause(d_lits + [-self._uniq_act])

    # -- model replay --------------------------------------------------------

    def _replay_model(self, n_frames):
        """Replay the current model's frame-0 state and inputs through the
        compiled simulator; returns one ``{net: 0/1}`` valuation per frame.
        Replay agreeing with the model is the replay-oracle cross-check —
        candidates are only ever dropped on *replayed* refutations."""
        frame0 = self._frames[0]
        state = {net: int(self._lit_value(frame0[net]))
                 for net in self.circuit.registers}
        input_frames = [
            {net: int(self._lit_value(self._frames[j][net]))
             for net in self.circuit.inputs}
            for j in range(n_frames)
        ]
        self.stats["cex_patterns"] += 1
        return replay_pattern(self.circuit, state, input_frames,
                              sim=self._csim)

    def _model_trace(self, depth):
        inputs = [
            {net: self._lit_value(self._frames[j][net])
             for net in self.circuit.inputs}
            for j in range(depth + 1)
        ]
        return CexTrace(inputs=inputs[:-1], final_input=inputs[-1])

    def _confirm_refutation(self, trace, depth):
        """Re-evaluate a base-case counterexample on the time-frame-expanded
        netlist (``netlist/unroll.py``) — an independent check that the
        incremental encoding and the unrolled semantics agree."""
        unrolled, net_at = unroll(self.circuit, depth + 1, initial="state")
        env = {}
        for t, frame in enumerate(trace.full_sequence()):
            for net, value in frame.items():
                env[net_at(net, t)] = int(bool(value))
        values = bit_parallel_eval(unrolled, env, 1)
        for s_out, i_out in self.product.output_pairs:
            if values[net_at(s_out, depth)] != values[net_at(i_out, depth)]:
                return
        raise VerificationError(
            "k-induction counterexample failed the unrolled-netlist check")

    # -- the induction loop --------------------------------------------------

    def _run(self, start):
        self._setup()
        refutation = self._base_check(0, start)
        if refutation is not None:
            return refutation
        for depth in self.schedule.depths():
            self._last_depth = depth
            while len(self._frames) <= depth:
                self._encode_next_frame()
                frame = len(self._frames) - 1
                refutation = self._base_check(frame, start)
                if refutation is not None:
                    return refutation
            proved = self._step_check(depth)
            self.schedule.emit_round(
                depth, proved=proved,
                cnf_clauses=len(self._enc.cnf.clauses),
                **self.invariants.counts(), **self.solver_stats())
            if proved:
                return self._result(True, start, {"depth": depth})
        return self._result(None, start,
                            {"bound_reached": self.max_depth})

    def _base_check(self, frame, start):
        """BMC at one frame: first P, then the candidate obligations."""
        self.stats["base_queries"] += 1
        if self._query([self._init_act, self._diff[frame]]):
            trace = self._model_trace(frame)
            self._confirm_refutation(trace, frame)
            return self._result(False, start, {"cex_depth": frame},
                                counterexample=trace)
        self._base_invariant_check(frame)
        return None

    def _base_invariant_check(self, frame):
        """CEGAR: drop candidates refuted on an initial path to ``frame``."""
        while self.invariants.active:
            viols = self.invariants.violation_literals(
                frame, self._frames[frame])
            cbad = self._enc.new_var()
            self._enc.add_clause(viols + [-cbad])
            self._flush()
            self.stats["base_queries"] += 1
            if not self._query([self._init_act, cbad]):
                return
            replayed = self._replay_model(frame + 1)
            dropped = []
            for values in replayed:
                dropped.extend(self.invariants.drop_refuted(values))
            if not dropped:
                raise VerificationError(
                    "base model refutes no candidate on replay")
            self._retire(dropped)

    def _step_check(self, depth):
        """Consecution at ``depth``; CEGAR-drops non-inductive candidates.

        SAT models either refute a candidate's consecution at the last
        frame (drop it, re-query — converging on the largest self-inductive
        subset) or violate P itself from an unreachable prefix, in which
        case the depth is advanced with the candidate set intact.
        """
        path = [-d for d in self._diff[:depth]]
        while True:
            viols = self.invariants.violation_literals(
                depth, self._frames[depth])
            target = self._enc.new_var()
            self._enc.add_clause([self._diff[depth]] + viols + [-target])
            self._flush()
            assumptions = list(path)
            assumptions.extend(self.invariants.assumptions())
            if self._uniq_act is not None:
                assumptions.append(self._uniq_act)
            assumptions.append(target)
            self.stats["step_queries"] += 1
            if not self._query(assumptions):
                return True
            replayed = self._replay_model(depth + 1)
            dropped = self.invariants.drop_refuted(replayed[depth])
            if not dropped:
                return False
            self._retire(dropped)

    # -- results -------------------------------------------------------------

    def solver_stats(self):
        """Engine counters with the live solver's effort folded in."""
        stats = dict(self.stats)
        if self._solver is not None:
            live = self._solver.stats()
            for key in _SOLVER_COUNTERS:
                stats[key] += live[key]
            stats["learned"] = live["learned"]
            stats["clauses"] = live["clauses"]
        return stats

    def _result(self, equivalent, start, extra, counterexample=None):
        details = {
            "max_depth": self.max_depth,
            "strengthen": self.strengthen,
            "candidate_source": self._candidate_source,
            "rounds": self.schedule.rounds,
            "solver_stats": self.solver_stats(),
        }
        details.update(self.invariants.counts())
        details.update(extra)
        return SecResult(
            equivalent=equivalent,
            method="k_induction",
            iterations=self._last_depth,
            seconds=time.monotonic() - start,
            counterexample=counterexample,
            details=details,
        )


def check_equivalence_k_induction(spec, impl, match_inputs="name",
                                  match_outputs="order", **options):
    """SEC by k-induction; returns a :class:`SecResult`.

    Complete up to ``max_depth``: proofs come from the inductive step,
    refutations from the base case (shortest counterexamples), and an
    exhausted depth bound or budget yields an inconclusive result.
    """
    engine = KInductionEngine(**options)
    return engine.verify(spec, impl, match_inputs=match_inputs,
                         match_outputs=match_outputs)


def check_equivalence_sweep_induction(spec, impl, match_inputs="name",
                                      match_outputs="order", seed=2024,
                                      sim_frames=24, sim_width=32,
                                      time_limit=None, max_iterations=None,
                                      max_depth=16, strengthen=True,
                                      fallback=True, clause_limit=None,
                                      progress=None, cancel_check=None):
    """Combined mode: SAT signal correspondence, then induction fallback.

    Runs the paper's fixed point first; a conclusive partition returns
    immediately.  An inconclusive fixed point hands its partition to
    :class:`KInductionEngine` as the strengthening invariant (event
    ``induction_fallback``) instead of falling back to state-space
    traversal.  ``fallback=False`` fails fast, returning the inconclusive
    correspondence verdict untouched.
    """
    start = time.monotonic()
    deadline = None if time_limit is None else start + time_limit
    product = build_product(spec, impl, match_inputs=match_inputs,
                            match_outputs=match_outputs)
    sweep = SatCorrespondence(
        product, seed=seed, sim_frames=sim_frames, sim_width=sim_width,
        time_limit=time_limit, progress=progress, cancel_check=cancel_check)
    classes = None
    iterations = 0
    sweep_aborted = None
    try:
        classes, iterations = sweep.compute(max_iterations=max_iterations)
    except ResourceBudgetExceeded as exc:
        sweep_aborted = str(exc)
    sweep_details = {
        "iterations": iterations,
        "classes": None if classes is None else len(classes),
        "solver_stats": sweep.solver_stats(),
    }
    if sweep_aborted is not None:
        sweep_details["aborted"] = sweep_aborted
    if classes is not None and _outputs_proved_sat(product, classes):
        return SecResult(
            equivalent=True, method="sweep_induct", iterations=iterations,
            seconds=time.monotonic() - start,
            details={"phase": "correspondence", "sweep": sweep_details})
    reason = sweep_aborted or "correspondence inconclusive"
    if not fallback:
        return SecResult(
            equivalent=None, method="sweep_induct", iterations=iterations,
            seconds=time.monotonic() - start,
            details={"phase": "correspondence", "sweep": sweep_details,
                     "fallback": "disabled", "reason": reason})
    if progress is not None:
        progress(INDUCTION_FALLBACK, reason=reason,
                 classes=sweep_details["classes"] or 0,
                 iterations=iterations)
    remaining = None if deadline is None else deadline - time.monotonic()
    engine = KInductionEngine(
        max_depth=max_depth, strengthen=strengthen,
        partition=classes if strengthen else None,
        seed=seed, sim_frames=sim_frames, sim_width=sim_width,
        time_limit=remaining, clause_limit=clause_limit,
        progress=progress, cancel_check=cancel_check)
    result = engine.verify_product(product)
    details = dict(result.details)
    details.update({"phase": "induction", "sweep": sweep_details,
                    "fallback_reason": reason})
    return SecResult(
        equivalent=result.equivalent, method="sweep_induct",
        iterations=iterations + result.iterations,
        seconds=time.monotonic() - start,
        counterexample=result.counterexample, details=details)


__all__ = [
    "INDUCTION_FALLBACK",
    "KInductionEngine",
    "check_equivalence_k_induction",
    "check_equivalence_sweep_induction",
]
