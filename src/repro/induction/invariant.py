"""Strengthening invariants for the inductive step.

The correspondence fixed point produces equivalence classes of signals; the
induction engine turns the *register-level* part of that partition into
candidate invariants — ``reg_a == reg_b`` (up to polarity) and
``reg == const`` pins — and asserts them on every assumed frame of the
inductive step.  Candidates are proof obligations, not axioms: the engine
base-checks them at every frame from the initial state and includes their
consecution in the step target, so an unproven (or outright wrong) partition
can never make the proof unsound — a bad candidate either falls to a base
counterexample or keeps the step satisfiable until it is dropped.

Dropping is CEGAR-style: a step model violating a candidate at the last
frame is replayed through :func:`repro.core.cexsplit.replay_pattern`, every
candidate the replay refutes is retired with the unit clause ``[-act]``
(exactly how ``core/satbackend.py`` retires constraint groups), and the
step is re-queried with the surviving set.  The loop converges on the
largest self-inductive subset of the partition at the current depth.
"""

from ..core.satbackend import CONST_NET


class Candidate:
    """One candidate invariant: ``lit_a == lit_b``.

    ``lit_x`` is net ``x`` complemented by ``x_comp``.  ``b_net`` may be the
    :data:`~repro.core.satbackend.CONST_NET` sentinel, meaning ``lit_a`` is
    pinned to constant true.  ``act`` is the solver-side activation variable
    guarding every clause the candidate contributed.
    """

    __slots__ = ("a_net", "a_comp", "b_net", "b_comp", "index", "act")

    def __init__(self, a_net, a_comp, b_net, b_comp, index):
        self.a_net = a_net
        self.a_comp = bool(a_comp)
        self.b_net = b_net
        self.b_comp = bool(b_comp)
        self.index = index
        self.act = None

    @property
    def is_constant(self):
        return self.b_net == CONST_NET

    def violated_by(self, values):
        """True when a replayed frame valuation refutes this candidate."""
        va = int(values[self.a_net]) ^ self.a_comp
        if self.is_constant:
            vb = 1 ^ self.b_comp
        else:
            vb = int(values[self.b_net]) ^ self.b_comp
        return va != vb

    def describe(self):
        a = ("~" if self.a_comp else "") + self.a_net
        if self.is_constant:
            return "{} == {}".format(a, 0 if self.b_comp else 1)
        b = ("~" if self.b_comp else "") + self.b_net
        return "{} == {}".format(a, b)


def _member_pair(member):
    """Normalize a class member to ``(net, complemented)``."""
    net = getattr(member, "net", None)
    if net is not None:
        return net, bool(getattr(member, "complemented", False))
    net, complemented = member
    return net, bool(complemented)


def _pair_class(members, out, registers):
    """Emit candidates for one equivalence class.

    ``members`` are ``(net, complemented)`` pairs.  Only registers (and the
    constant sentinel) are kept: register equalities are what make a
    partition inductive-frame-transportable, and restricting to them keeps
    the candidate count at register scale rather than signal scale.
    """
    const = None
    regs = []
    for net, complemented in members:
        if net == CONST_NET:
            const = (net, complemented)
        elif net in registers:
            regs.append((net, complemented))
    if const is not None:
        for net, complemented in regs:
            out.append((net, complemented, CONST_NET, const[1]))
        return
    if len(regs) < 2:
        return
    leader = regs[0]
    for net, complemented in regs[1:]:
        out.append((net, complemented, leader[0], leader[1]))


def candidates_from_classes(classes, circuit):
    """Candidates from a (possibly partial) correspondence partition.

    ``classes`` is an iterable of iterables of members, each either a
    ``(net, complemented)`` pair or an object with ``net``/``complemented``
    attributes (the SAT backend's ``_SatSignal``).  Members naming nets that
    are not registers of ``circuit`` are ignored, so partitions computed on
    an augmented (retimed) working circuit degrade gracefully.
    """
    registers = set(circuit.registers)
    raw = []
    for cls in classes:
        _pair_class([_member_pair(m) for m in cls], raw, registers)
    return [Candidate(a, ac, b, bc, i)
            for i, (a, ac, b, bc) in enumerate(raw)]


def candidates_from_simulation(circuit, seed=2024, sim_frames=24,
                               sim_width=32, compiled=None):
    """Seed candidates from random simulation signatures.

    This is the standalone engine's substitute for a correspondence run: the
    simulation pre-partition (the fixed point's T0) restricted to registers
    plus the constant sentinel.  Everything it proposes is still base-checked
    and consecution-checked, so over-approximation is harmless.
    """
    from ..netlist.simulate import SequentialSimulator

    sim = SequentialSimulator(circuit, width=sim_width, seed=seed,
                              compiled=compiled)
    sim.run(sim_frames)
    total_bits = sim_frames * sim_width
    full = (1 << total_bits) - 1
    ref_bit = total_bits - sim_width
    buckets = {full: [(CONST_NET, False)]}
    for net in circuit.registers:
        signature = sim.signatures[net]
        complemented = not ((signature >> ref_bit) & 1)
        if complemented:
            signature ^= full
        buckets.setdefault(signature, []).append((net, complemented))
    return candidates_from_classes(buckets.values(), circuit)


class InvariantSet:
    """The live candidate set and its solver-side bookkeeping.

    The engine binds the set to its encoder once, then asks it to (a) assert
    active candidates on each newly assumed frame, (b) produce per-frame
    violation literals for base checks and the step target, and (c) drop
    candidates refuted by a replayed counterexample frame.  All clauses are
    guarded by per-candidate activation variables (guard literal last, so
    the watch lists skip it — the ``satbackend`` idiom), and dropping is the
    standard retire-by-unit-clause.
    """

    def __init__(self, candidates):
        self.active = list(candidates)
        self.dropped = []
        self.initial_count = len(self.active)
        self._enc = None
        self._viol = {}

    def bind(self, enc):
        self._enc = enc
        for cand in self.active:
            cand.act = enc.new_var()

    def _lit(self, net, complemented, frame_vars):
        var = frame_vars[net]
        return -var if complemented else var

    def assert_frame(self, frame_vars):
        """Add guarded equality clauses for every active candidate."""
        add = self._enc.add_clause
        for cand in self.active:
            la = self._lit(cand.a_net, cand.a_comp, frame_vars)
            if cand.is_constant:
                if cand.b_comp:
                    la = -la
                add([la, -cand.act])
            else:
                lb = self._lit(cand.b_net, cand.b_comp, frame_vars)
                add([-la, lb, -cand.act])
                add([la, -lb, -cand.act])

    def violation_literals(self, frame_index, frame_vars):
        """One literal per active candidate, true iff it fails at the frame.

        Literals are memoized per (candidate, frame) so CEGAR re-queries at
        the same depth reuse the already-encoded XNOR cones.
        """
        lits = []
        for cand in self.active:
            key = (cand.index, frame_index)
            lit = self._viol.get(key)
            if lit is None:
                la = self._lit(cand.a_net, cand.a_comp, frame_vars)
                if cand.is_constant:
                    lit = -la if not cand.b_comp else la
                else:
                    lb = self._lit(cand.b_net, cand.b_comp, frame_vars)
                    lit = -self._enc.equal_var(la, lb)
                self._viol[key] = lit
            lits.append(lit)
        return lits

    def assumptions(self):
        return [cand.act for cand in self.active]

    def drop_refuted(self, frame_values):
        """Retire every active candidate a replayed frame refutes.

        Returns the dropped candidates; the caller retires their activation
        variables in the solver (unit clause + simplify).
        """
        doomed = [c for c in self.active if c.violated_by(frame_values)]
        if doomed:
            gone = set(id(c) for c in doomed)
            self.active = [c for c in self.active if id(c) not in gone]
            self.dropped.extend(doomed)
        return doomed

    def counts(self):
        return {"candidates_initial": self.initial_count,
                "candidates_active": len(self.active),
                "candidates_dropped": len(self.dropped)}


__all__ = [
    "Candidate",
    "InvariantSet",
    "candidates_from_classes",
    "candidates_from_simulation",
]
