"""Temporal induction: k-induction over the product miter.

The third proof engine, complementing the correspondence fixed point
(sound, incomplete) and symbolic traversal (complete, expensive):
k-induction with simple-path constraints, optionally strengthened by a
correspondence partition.  See :mod:`repro.induction.engine` for the
formulation and the soundness argument.
"""

from .engine import (
    INDUCTION_FALLBACK,
    KInductionEngine,
    check_equivalence_k_induction,
    check_equivalence_sweep_induction,
)
from .invariant import (
    Candidate,
    InvariantSet,
    candidates_from_classes,
    candidates_from_simulation,
)
from .schedule import DepthSchedule, PROGRESS_INDUCTION_ROUND

__all__ = [
    "Candidate",
    "DepthSchedule",
    "INDUCTION_FALLBACK",
    "InvariantSet",
    "KInductionEngine",
    "PROGRESS_INDUCTION_ROUND",
    "candidates_from_classes",
    "candidates_from_simulation",
    "check_equivalence_k_induction",
    "check_equivalence_sweep_induction",
]
