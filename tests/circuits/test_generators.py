"""Benchmark generator and suite tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    TABLE1_ROWS,
    generate_benchmark,
    row_by_name,
    table1_suite,
)
from repro.circuits.generators import (
    _Builder,
    add_counter,
    add_lfsr,
    add_multiplier_mixer,
    add_shift_chain,
)
from repro.netlist import SequentialSimulator, bench
from repro.netlist.cones import combinational_support


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6),
       st.integers(min_value=4, max_value=40))
def test_generate_benchmark_register_count_and_validity(seed, n_regs):
    c = generate_benchmark("g", n_regs=n_regs, seed=seed)
    assert c.num_registers == n_regs
    c.validate()
    assert c.outputs


def test_generator_determinism():
    a = generate_benchmark("d", n_regs=20, seed=5)
    b = generate_benchmark("d", n_regs=20, seed=5)
    assert bench.dumps(a) == bench.dumps(b)
    c = generate_benchmark("d", n_regs=20, seed=6)
    assert bench.dumps(a) != bench.dumps(c)


def test_generated_supports_stay_local():
    """Every register's next-state support is bounded — the property that
    keeps the benchmark BDD-friendly, like the real ISCAS circuits."""
    c = generate_benchmark("loc", n_regs=40, seed=9)
    for reg in c.registers.values():
        support = combinational_support(c, reg.data_in)
        assert len(support) <= 12, (reg.name, len(support))


def test_deep_counter_profile():
    c = generate_benchmark("deep", n_regs=32, seed=1, deep_counter_bits=32)
    # One 32-bit counter: the sequential depth is 2^32 — check the carry
    # chain exists structurally.
    carries = [n for n in c.gates if "_c" in n and n.startswith("cnt")]
    assert len(carries) >= 30


def test_mixer_profile_is_bdd_hostile():
    from repro.bdd import BddManager
    from repro.errors import NodeLimitExceeded
    from repro.netlist.bddnet import build_bdds

    c = generate_benchmark("mix", n_regs=40, seed=2, mixer_width=10)
    mgr = BddManager(node_limit=30000)
    leaves = {}
    for net in list(c.inputs) + list(c.registers):
        leaves[net] = mgr.add_var(net)
    with pytest.raises(NodeLimitExceeded):
        build_bdds(c, mgr, leaves)


def test_every_module_observable():
    """Nothing in a generated benchmark may be dead logic (the checksum
    output ties every motif to an output)."""
    from repro.transform import sweep

    c = generate_benchmark("obs", n_regs=30, seed=3)
    swept = sweep(c)
    assert swept.num_registers == c.num_registers


def test_motifs_individually():
    builder = _Builder("m", n_inputs=2, seed=0)
    counter = add_counter(builder, 4)
    shift = add_shift_chain(builder, 3)
    lfsr = add_lfsr(builder, 5)
    assert len(counter) == 4 and len(shift) == 3 and len(lfsr) == 5
    builder.circuit.add_output(counter[-1])
    builder.circuit.add_output(shift[-1])
    builder.circuit.add_output(lfsr[-1])
    builder.circuit.validate()
    # LFSR init is non-zero so it doesn't get stuck at zero.
    sim = SequentialSimulator(builder.circuit, width=1, seed=1)
    sigs = sim.run(20)
    assert sigs[lfsr[-1]] != 0 or any(sigs[r] != 0 for r in lfsr)


def test_mixer_motif_builds():
    builder = _Builder("mm", n_inputs=2, seed=1)
    out = add_multiplier_mixer(builder, 4)
    builder.circuit.add_output(out)
    builder.circuit.validate()


def test_table1_catalog_matches_paper_register_counts():
    expected = {
        "s208": 8, "s298": 14, "s344": 15, "s349": 15, "s382": 21,
        "s386": 6, "s420": 16, "s444": 21, "s510": 6, "s526": 21,
        "s641": 19, "s713": 19, "s820": 5, "s832": 5, "s838": 32,
        "s953": 29, "s1196": 18, "s1238": 18, "s1423": 74, "s1488": 6,
        "s1494": 6, "s3271": 116, "s3330": 132, "s3384": 183,
        "s5378": 164, "s6669": 239,
    }
    catalog = {row.name: row.regs for row in TABLE1_ROWS}
    assert catalog == expected
    for row in TABLE1_ROWS:
        if row.scale == "small":
            spec = row.spec()
            assert spec.num_registers == row.regs


def test_table1_suite_scales():
    small = table1_suite(scales=("small",))
    assert all(row.scale == "small" for row in small)
    everything = table1_suite(scales=("small", "medium", "large"))
    assert len(everything) == len(TABLE1_ROWS)
    with pytest.raises(KeyError):
        row_by_name("s9999")


def test_suite_pair_is_equivalent_by_simulation():
    row = row_by_name("s386")
    spec, impl = row.pair()
    sim_a = SequentialSimulator(spec, width=64, seed=4)
    sim_b = SequentialSimulator(impl, width=64, seed=4)
    sig_a = sim_a.run(30)
    sig_b = sim_b.run(30)
    for a, b in zip(spec.outputs, impl.outputs):
        assert sig_a[a] == sig_b[b]


def test_deep_rows_have_deep_counters():
    for name, bits in (("s208", 8), ("s420", 16), ("s838", 32)):
        row = row_by_name(name)
        assert row.deep_counter_bits == bits
