"""k-induction generalization of the SAT backend."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import check_equivalence_sat_sweep
from repro.core.satbackend import SatCorrespondence
from repro.netlist import Circuit, GateType, build_product
from repro.reach import explicit_check_equivalence
from repro.transform import inject_distinguishable_fault, optimize

from ..netlist.helpers import counter_circuit, random_sequential_circuit


def test_k_must_be_positive():
    spec = counter_circuit(2)
    product = build_product(spec, spec.copy(), match_outputs="order")
    with pytest.raises(ValueError):
        SatCorrespondence(product, k=0)


def test_k1_matches_default():
    spec = counter_circuit(3)
    impl = optimize(spec, level=2, seed=1)
    r1 = check_equivalence_sat_sweep(spec, impl, match_outputs="order")
    r2 = check_equivalence_sat_sweep(spec, impl, match_outputs="order", k=1)
    assert r1.equivalent == r2.equivalent
    assert r2.details["k"] == 1


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_k2_never_loses_proofs(seed):
    spec = random_sequential_circuit(seed, n_inputs=2, n_regs=3, n_gates=8)
    impl = optimize(spec, level=2, seed=seed + 1)
    r1 = check_equivalence_sat_sweep(spec, impl, match_outputs="order", k=1)
    r2 = check_equivalence_sat_sweep(spec, impl, match_outputs="order", k=2)
    if r1.proved:
        assert r2.proved


def delayed_parity_pair():
    """A two-deep delay re-encoded through a parity register.

    The implementation keeps ``r == p XOR q`` as a *registered* invariant
    (r reloads x XOR p each cycle) and decodes the delayed value as
    ``r XOR p`` — a cross-frame re-encoding exercising the unrolled frames.
    """
    spec = Circuit("delay_spec")
    spec.add_input("x")
    spec.add_register("a", "x", init=False)
    spec.add_register("b", "a", init=False)
    spec.add_output("b")
    spec.validate()

    impl = Circuit("delay_impl")
    impl.add_input("x")
    impl.add_register("p", "x", init=False)
    impl.add_gate("xxp", GateType.XOR, ["x", "p"])
    impl.add_register("r", "xxp", init=False)  # r(t) == p(t) XOR q(t)
    impl.add_gate("dec", GateType.XOR, ["r", "p"])
    impl.add_output("dec")
    impl.validate()
    return spec, impl


def test_k2_delayed_parity_example():
    spec, impl = delayed_parity_pair()
    oracle = explicit_check_equivalence(
        build_product(spec, impl, match_outputs="order")
    )
    assert oracle.proved
    r2 = check_equivalence_sat_sweep(spec, impl, match_outputs="order", k=2)
    assert r2.proved
    # k=2 must never be weaker than k=1.
    r1 = check_equivalence_sat_sweep(spec, impl, match_outputs="order", k=1)
    if r1.proved:
        assert r2.proved


def test_k_induction_on_incompleteness_witness_stays_sound():
    from repro.circuits import onehot_ring_pair

    spec, impl = onehot_ring_pair(enable=True)
    for k in (1, 2, 3):
        result = check_equivalence_sat_sweep(spec, impl,
                                             match_outputs="order", k=k)
        assert result.equivalent is not False


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_k2_sound_on_mutations(seed):
    spec = random_sequential_circuit(seed, n_inputs=2, n_regs=3, n_gates=8)
    impl, _ = inject_distinguishable_fault(spec, seed=seed)
    product = build_product(spec, impl, match_outputs="order")
    oracle = explicit_check_equivalence(product)
    result = check_equivalence_sat_sweep(spec, impl, match_outputs="order",
                                         k=2)
    if oracle.refuted:
        assert result.equivalent is not True


def test_base_case_depth_respected():
    """With k=2 the base case covers two frames: signals that agree at s0
    but diverge at frame 1 must already be split by the base case."""
    spec = Circuit("base")
    spec.add_input("x")
    spec.add_register("r1", "x", init=False)
    spec.add_gate("nx", GateType.NOT, ["x"])
    spec.add_register("r2", "nx", init=False)  # differs from r1 at frame 1
    spec.add_gate("o", GateType.OR, ["r1", "r2"])
    spec.add_output("o")
    product = build_product(spec, spec.copy(), match_outputs="order")
    engine = SatCorrespondence(product, k=2)
    classes, _ = engine.compute()
    index = {}
    for idx, cls in enumerate(classes):
        for sig in cls:
            index[sig.net] = idx
    assert index["s.r1"] != index["s.r2"]
    assert index["s.r1"] == index["i.r1"]
