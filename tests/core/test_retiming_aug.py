"""Retiming-with-lag-1 augmentation unit tests (Fig. 3 semantics)."""

from repro.core.retiming_aug import RetimingAugmenter, is_augmented
from repro.core.timeframe import TimeFrame
from repro.netlist import Circuit, GateType, SequentialSimulator

from ..netlist.helpers import counter_circuit


def chain_circuit():
    """Two 2-deep register chains feeding an AND (the Fig. 3 shape)."""
    c = Circuit("chain")
    c.add_input("a")
    c.add_input("b")
    c.add_register("p1", "a", init=False)
    c.add_register("p2", "p1", init=False)
    c.add_register("q1", "b", init=False)
    c.add_register("q2", "q1", init=False)
    c.add_gate("v", GateType.AND, ["p2", "q2"])
    c.add_output("v")
    return c.validate()


def test_eligibility_requires_all_register_fanins():
    c = chain_circuit()
    c.add_gate("w", GateType.OR, ["p1", "a"])  # mixed fanins
    c.outputs.append("w")
    frame = TimeFrame(c)
    aug = RetimingAugmenter(frame)
    assert aug.eligible_gates() == ["v"]


def test_augmented_signal_function_is_shifted():
    """The added gate computes the original gate's *next frame* value: its
    simulated value at frame t equals v's value at frame t+1."""
    c = chain_circuit()
    frame = TimeFrame(c, sim_frames=12, sim_width=16)
    aug = RetimingAugmenter(frame)
    new_nets = aug.augment_round()
    assert len(new_nets) == 1
    new_net = new_nets[0]
    assert is_augmented(new_net)
    # Independent simulation storing frames explicitly.
    sim = SequentialSimulator(frame.circuit, width=8, seed=77)
    frames = [dict(sim.step()) for _ in range(10)]
    for t in range(9):
        assert frames[t][new_net] == frames[t + 1]["v"], t


def test_second_round_reaches_lag_two():
    c = chain_circuit()
    frame = TimeFrame(c)
    aug = RetimingAugmenter(frame)
    first = aug.augment_round()
    second = aug.augment_round()
    assert len(second) == 1
    # The lag-2 signal equals v two frames later.
    sim = SequentialSimulator(frame.circuit, width=8, seed=5)
    frames = [dict(sim.step()) for _ in range(10)]
    for t in range(8):
        assert frames[t][second[0]] == frames[t + 2]["v"], t


def test_rounds_exhaust():
    c = chain_circuit()
    frame = TimeFrame(c)
    aug = RetimingAugmenter(frame)
    rounds = 0
    while aug.augment_round():
        rounds += 1
        assert rounds < 10
    # Chains are 2 deep: lag-1 over registers, lag-2 over inputs... the
    # lag-2 signal's fanins are primary inputs, so it is never shifted
    # again and augmentation terminates.
    assert rounds == 2
    assert aug.eligible_gates() == []


def test_no_eligible_gates_no_rounds():
    c = Circuit("flat")
    c.add_input("x")
    c.add_register("r", "g", init=False)
    c.add_gate("g", GateType.AND, ["x", "r"])  # mixed fanins: ineligible
    c.add_output("r")
    frame = TimeFrame(c)
    aug = RetimingAugmenter(frame)
    assert aug.augment_round() == []
    assert aug.rounds == 0


def test_augmented_nets_tracked_and_simulated():
    c = counter_circuit(3)
    frame = TimeFrame(c)
    aug = RetimingAugmenter(frame)
    new_nets = aug.augment_round()
    for net in new_nets:
        assert net in frame.signatures
        assert net in frame.values
    assert aug.augmented_nets == new_nets


def test_is_augmented_marker():
    assert is_augmented("@rt1_v")
    assert not is_augmented("v")
    assert not is_augmented("s.@weird")
