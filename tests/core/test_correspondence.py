"""Fixed-point iteration unit tests (Eq. 2, Eq. 3, Theorems 1-2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.correspondence import (
    compute_fixpoint,
    initial_partition,
)
from repro.core.timeframe import TimeFrame
from repro.errors import ResourceBudgetExceeded
from repro.netlist import Circuit, GateType, SequentialSimulator, build_product

from ..netlist.helpers import counter_circuit, random_sequential_circuit, toggle_circuit


def make_frame(circuit):
    return TimeFrame(circuit.copy() if hasattr(circuit, "copy") else circuit)


def class_nets(partition):
    return [
        sorted(net for fn in cls for net, _ in fn.members)
        for cls in partition.classes
    ]


def test_t0_groups_by_initial_state_behaviour():
    # Two registers with equal init but different next-state functions are
    # together in T0 and split by refinement.
    c = Circuit("t0")
    c.add_input("x")
    c.add_register("p", "x", init=False)
    c.add_gate("nx", GateType.NOT, ["x"])
    c.add_register("q", "nx", init=False)
    c.add_gate("o", GateType.OR, ["p", "q"])
    c.add_output("o")
    frame = make_frame(c)
    functions = frame.build_signal_functions()
    t0 = initial_partition(frame, functions, use_simulation=False)
    together = [cls for cls in class_nets(t0) if "p" in cls and "q" in cls]
    assert together
    fix = compute_fixpoint(frame, functions, use_simulation=False)
    apart = [cls for cls in class_nets(fix.partition) if "p" in cls]
    assert all("q" not in cls for cls in apart)


def test_simulation_seeding_presplits():
    c = Circuit("t1")
    c.add_input("x")
    c.add_register("p", "x", init=False)
    c.add_gate("nx", GateType.NOT, ["x"])
    c.add_register("q", "nx", init=False)
    c.add_gate("o", GateType.OR, ["p", "q"])
    c.add_output("o")
    frame = make_frame(c)
    functions = frame.build_signal_functions()
    with_sim = initial_partition(frame, functions, use_simulation=True)
    without_sim = initial_partition(frame, functions, use_simulation=False)
    assert with_sim.num_classes >= without_sim.num_classes


def test_fixpoint_is_stable():
    """Re-running refinement on the fixpoint changes nothing (Thm. 2)."""
    c = random_sequential_circuit(3, n_inputs=2, n_regs=3, n_gates=8)
    product = build_product(c, c.copy(), match_outputs="order")
    frame = make_frame(product.circuit)
    functions = frame.build_signal_functions()
    fix1 = compute_fixpoint(frame, functions)
    fix2 = compute_fixpoint(frame, functions)
    assert class_nets(fix1.partition) == class_nets(fix2.partition)


def test_iterations_bounded_by_functions_plus_one():
    """Theorem 2's bound: at most |F| + 1 iterations."""
    c = counter_circuit(4)
    product = build_product(c, c.copy(), match_outputs="order")
    frame = make_frame(product.circuit)
    functions = frame.build_signal_functions()
    fix = compute_fixpoint(frame, functions, use_simulation=False)
    assert fix.iterations <= len(functions) + 1


def test_self_product_all_signals_correspond():
    c = random_sequential_circuit(9, n_inputs=2, n_regs=3, n_gates=8)
    product = build_product(c, c.copy(), match_outputs="order")
    frame = make_frame(product.circuit)
    fix = compute_fixpoint(frame, frame.build_signal_functions())
    for cls in fix.partition.classes:
        nets = [net for fn in cls for net, _ in fn.members]
        spec_side = {n[2:] for n in nets if n.startswith("s.")}
        impl_side = {n[2:] for n in nets if n.startswith("i.")}
        # In a self product every spec signal has its mirror in class.
        assert spec_side == impl_side, nets


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_classes_are_sequentially_equivalent(seed):
    """Soundness of the relation itself: same-class members (polarity
    adjusted) agree on every simulated reachable state."""
    c = random_sequential_circuit(seed, n_inputs=2, n_regs=3, n_gates=8)
    product = build_product(c, c.copy(), match_outputs="order")
    frame = make_frame(product.circuit)
    fix = compute_fixpoint(frame, frame.build_signal_functions())
    # Long independent simulation (different seed than the seeding run).
    sim = SequentialSimulator(product.circuit, width=64, seed=seed + 999)
    sim.run(40)
    total_bits = 40 * 64
    full = (1 << total_bits) - 1
    for cls in fix.partition.classes:
        members = [(net, comp) for fn in cls for net, comp in fn.members
                   if net != "@const"]
        if len(members) < 2:
            continue
        ref_net, ref_comp = members[0]
        ref_sig = sim.signatures[ref_net] ^ (full if ref_comp else 0)
        for net, comp in members[1:]:
            sig = sim.signatures[net] ^ (full if comp else 0)
            assert sig == ref_sig, (ref_net, net)


def test_constant_signals_join_const_class():
    c = Circuit("const")
    c.add_input("x")
    c.add_register("r", "one", init=True)   # reloads 1 forever
    c.add_gate("one", GateType.CONST1, [])
    c.add_gate("o", GateType.BUF, ["r"])
    c.add_output("o")
    frame = make_frame(c)
    fix = compute_fixpoint(frame, frame.build_signal_functions())
    const_class = next(
        cls for cls in fix.partition.classes
        if any(net == "@const" for fn in cls for net, _ in fn.members)
    )
    nets = {net for fn in const_class for net, _ in fn.members}
    assert "r" in nets


def test_antivalent_signals_share_class():
    c = Circuit("anti")
    c.add_input("x")
    c.add_register("p", "x", init=False)
    c.add_gate("np", GateType.NOT, ["p"])
    c.add_output("np")
    frame = make_frame(c)
    fix = compute_fixpoint(frame, frame.build_signal_functions())
    cls = next(
        cls for cls in fix.partition.classes
        if any(net == "p" for fn in cls for net, _ in fn.members)
    )
    members = {net: comp for fn in cls for net, comp in fn.members}
    assert "np" in members
    assert members["p"] != members["np"]


def test_fundep_substitution_equals_plain_result():
    """§4: the substitution is an implementation device — the computed
    relation must be identical with and without it."""
    for seed in (1, 5, 9):
        c = random_sequential_circuit(seed, n_inputs=2, n_regs=4, n_gates=10)
        product = build_product(c, c.copy(), match_outputs="order")
        frame_a = make_frame(product.circuit)
        fix_a = compute_fixpoint(frame_a, frame_a.build_signal_functions(),
                                 use_fundeps=True)
        frame_b = make_frame(product.circuit)
        fix_b = compute_fixpoint(frame_b, frame_b.build_signal_functions(),
                                 use_fundeps=False)
        assert class_nets(fix_a.partition) == class_nets(fix_b.partition)


def test_iteration_budget_enforced():
    c = counter_circuit(5)
    product = build_product(c, c.copy(), match_outputs="order")
    frame = make_frame(product.circuit)
    functions = frame.build_signal_functions()
    with pytest.raises(ResourceBudgetExceeded):
        compute_fixpoint(frame, functions, use_simulation=False,
                         max_iterations=1)


def test_reach_bound_only_adds_equivalences():
    """A reachability bound can only coarsen the final partition."""
    from repro.bdd.transfer import transfer
    from repro.reach import TransitionSystem, symbolic_reachability

    c = random_sequential_circuit(4, n_inputs=2, n_regs=3, n_gates=8)
    product = build_product(c, c.copy(), match_outputs="order")
    frame = make_frame(product.circuit)
    functions = frame.build_signal_functions()
    plain = compute_fixpoint(frame, functions)
    ts = TransitionSystem(product.circuit)
    reached, _, _ = symbolic_reachability(ts)
    bound = transfer(ts.manager, reached, frame.manager,
                     {ts.cur_id[n]: frame.state_id[n] for n in ts.cur_id})
    frame2 = make_frame(product.circuit)
    functions2 = frame2.build_signal_functions()
    ts2 = TransitionSystem(product.circuit)
    reached2, _, _ = symbolic_reachability(ts2)
    bound2 = transfer(ts2.manager, reached2, frame2.manager,
                      {ts2.cur_id[n]: frame2.state_id[n] for n in ts2.cur_id})
    bounded = compute_fixpoint(frame2, functions2, reach_bound=bound2)
    assert bounded.partition.num_classes <= plain.partition.num_classes


def test_constrain_refinement_identical_partition():
    """Both Eq. 3 decision procedures compute the same relation."""
    for seed in (2, 7):
        c = random_sequential_circuit(seed, n_inputs=2, n_regs=4, n_gates=10)
        product = build_product(c, c.copy(), match_outputs="order")
        results = {}
        for mode in ("implication", "constrain"):
            frame = make_frame(product.circuit)
            fix = compute_fixpoint(frame, frame.build_signal_functions(),
                                   refinement=mode)
            results[mode] = class_nets(fix.partition)
        assert results["implication"] == results["constrain"]


def test_bad_refinement_mode_rejected():
    c = random_sequential_circuit(1, n_inputs=2, n_regs=2, n_gates=4)
    frame = make_frame(c)
    with pytest.raises(ValueError):
        compute_fixpoint(frame, frame.build_signal_functions(),
                         use_simulation=False, refinement="bogus")
