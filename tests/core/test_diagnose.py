"""Counterexample diagnosis tests."""

import pytest

from repro.core import VanEijkVerifier, diagnose
from repro.errors import VerificationError
from repro.netlist import build_product
from repro.reach import check_equivalence_traversal
from repro.transform import inject_distinguishable_fault

from ..netlist.helpers import counter_circuit, random_sequential_circuit


def refuted_case(seed=3):
    spec = counter_circuit(3)
    impl, what = inject_distinguishable_fault(spec, seed=seed)
    product = build_product(spec, impl, match_outputs="order")
    result = VanEijkVerifier().verify_product(product)
    assert result.refuted
    return product, result, what


def test_diagnose_basic_report():
    product, result, what = refuted_case()
    report = diagnose(product, result)
    assert report.failing_pairs
    assert 0 <= report.first_divergence_frame < result.counterexample.length
    summary = report.summary()
    assert "counterexample of length" in summary
    assert "failing output pair" in summary


def test_diagnose_frames_replay_consistently():
    product, result, _ = refuted_case(seed=7)
    report = diagnose(product, result)
    final = report.frames[-1]
    for s, i in report.failing_pairs:
        assert final[s] != final[i]


def test_diagnose_vcd_output():
    product, result, _ = refuted_case(seed=9)
    report = diagnose(product, result)
    text = report.to_vcd(product.circuit)
    assert "$enddefinitions $end" in text
    assert "#0" in text


def test_diagnose_traversal_cex():
    spec = counter_circuit(3)
    impl, _ = inject_distinguishable_fault(spec, seed=5)
    product = build_product(spec, impl, match_outputs="order")
    result = check_equivalence_traversal(product)
    assert result.refuted
    report = diagnose(product, result)
    assert report.failing_pairs


def test_diagnose_identical_names_finds_suspects():
    # Spec vs spec-with-fault keeps names mirrored: the injected fault's
    # cone must appear among the suspects.
    spec = counter_circuit(4)
    impl, what = inject_distinguishable_fault(spec, seed=13)
    product = build_product(spec, impl, match_outputs="order")
    result = VanEijkVerifier().verify_product(product)
    report = diagnose(product, result)
    assert report.suspect_nets  # divergent mirrored nets exist


def test_diagnose_rejects_non_refuted():
    spec = counter_circuit(2)
    product = build_product(spec, spec.copy(), match_outputs="order")
    result = VanEijkVerifier().verify_product(product)
    assert result.proved
    with pytest.raises(VerificationError):
        diagnose(product, result)
