"""The paper's worked examples, asserted in detail (Figs. 2-4, §6)."""

import pytest

from repro.circuits import fig2_pair, fig3_pair, mod3_counter_pair, onehot_ring_pair
from repro.core import VanEijkVerifier, compute_fixpoint
from repro.core.timeframe import TimeFrame
from repro.netlist import build_product
from repro.reach import check_equivalence_traversal, explicit_check_equivalence


def final_classes(spec, impl, **fixpoint_options):
    product = build_product(spec, impl, match_inputs="name",
                            match_outputs="order")
    frame = TimeFrame(product.circuit.copy())
    functions = frame.build_signal_functions()
    fix = compute_fixpoint(frame, functions, **fixpoint_options)
    classes = []
    for cls in fix.partition.classes:
        nets = sorted(net for fn in cls for net, _ in fn.members)
        if len(nets) > 1:
            classes.append(nets)
    return fix, classes, frame


def test_fig2_discovers_the_papers_classes():
    spec, impl = fig2_pair()
    fix, classes, frame = final_classes(spec, impl)
    flat = {frozenset(c) for c in classes}
    # {f3, f6}: the retimed AND corresponds to the register v6.
    assert any({"s.v3", "i.v6"} <= set(c) for c in flat)
    # {f4, f7}: the outputs correspond.
    assert any({"s.v4", "i.v7"} <= set(c) for c in flat)
    # v1 pairs with the implementation's remaining input register.
    assert any({"s.v1", "i.w1"} <= set(c) for c in flat)


def test_fig2_fundep_substitution_used():
    spec, impl = fig2_pair()
    fix, _, _ = final_classes(spec, impl, use_fundeps=True)
    # The paper's example replaces state variable v6 by v1·v2.
    assert fix.substitutions >= 1


def test_fig2_proved_by_engine():
    spec, impl = fig2_pair()
    result = VanEijkVerifier().verify(spec, impl, match_outputs="order")
    assert result.proved
    assert result.details["retime_rounds"] == 0
    oracle = explicit_check_equivalence(
        build_product(spec, impl, match_outputs="order")
    )
    assert oracle.proved


def test_fig3_requires_retiming_augmentation():
    spec, impl = fig3_pair()
    no_retime = VanEijkVerifier(use_retiming=False).verify(
        spec, impl, match_outputs="order"
    )
    assert no_retime.inconclusive
    with_retime = VanEijkVerifier(use_retiming=True).verify(
        spec, impl, match_outputs="order"
    )
    assert with_retime.proved
    assert with_retime.details["retime_rounds"] == 1
    assert with_retime.details["augmented_signals"] >= 1


def test_fig3_is_actually_equivalent():
    spec, impl = fig3_pair()
    oracle = explicit_check_equivalence(
        build_product(spec, impl, match_outputs="order")
    )
    assert oracle.proved


def test_fig3_augmented_signal_is_the_missing_product():
    spec, impl = fig3_pair()
    product = build_product(spec, impl, match_outputs="order")
    result = VanEijkVerifier().verify_product(product)
    assert result.proved


def test_mod3_counters_proved_despite_reencoding():
    spec, impl = mod3_counter_pair()
    oracle = explicit_check_equivalence(
        build_product(spec, impl, match_outputs="order")
    )
    assert oracle.proved
    result = VanEijkVerifier(use_retiming=False).verify(
        spec, impl, match_outputs="order"
    )
    assert result.proved


def test_onehot_plain_ring_needs_retiming():
    spec, impl = onehot_ring_pair(enable=False)
    assert explicit_check_equivalence(
        build_product(spec, impl, match_outputs="order")
    ).proved
    bare = VanEijkVerifier(use_retiming=False).verify(
        spec, impl, match_outputs="order"
    )
    assert bare.inconclusive
    augmented = VanEijkVerifier(use_retiming=True, max_retiming_rounds=4).verify(
        spec, impl, match_outputs="order"
    )
    assert augmented.proved


def test_onehot_enabled_ring_is_the_incompleteness_witness():
    spec, impl = onehot_ring_pair(enable=True)
    product = build_product(spec, impl, match_outputs="order")
    assert explicit_check_equivalence(product).proved
    # The whole Fig. 4 method terminates undecided...
    full = VanEijkVerifier(max_retiming_rounds=6).verify_product(product)
    assert full.inconclusive
    # ...but never wrongly refutes (soundness), and the fallbacks prove it.
    reach = VanEijkVerifier(reach_bound="exact").verify_product(product)
    assert reach.proved
    traversal = check_equivalence_traversal(product)
    assert traversal.proved


def test_onehot_enabled_approx_blocks_insufficient():
    # Machine-by-machine approximation cannot see cross-register one-hotness
    # when each register lands in its own block.
    spec, impl = onehot_ring_pair(enable=True)
    result = VanEijkVerifier(reach_bound="approx").verify(
        spec, impl, match_outputs="order"
    )
    # The blocks here are connected (the ring couples all registers), so the
    # approximation may actually be exact; accept either outcome but demand
    # soundness: never a refutation.
    assert result.equivalent in (True, None)
