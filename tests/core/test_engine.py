"""Engine-level properties: soundness against the oracle, option behaviour,
budgets, and the %eqs metric."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import VanEijkVerifier, check_equivalence_van_eijk
from repro.errors import VerificationError
from repro.netlist import Circuit, GateType, bit_parallel_eval, build_product
from repro.reach import explicit_check_equivalence
from repro.transform import (
    inject_distinguishable_fault,
    optimize,
    retime,
    synthesize,
    xor_reencode,
)

from ..netlist.helpers import counter_circuit, random_sequential_circuit, toggle_circuit


def replay(product, trace):
    circuit = product.circuit
    state = {name: reg.init for name, reg in circuit.registers.items()}
    values = None
    for frame_inputs in trace.full_sequence():
        env = {net: int(bool(frame_inputs.get(net, False)))
               for net in circuit.inputs}
        env.update({net: int(bool(v)) for net, v in state.items()})
        values = bit_parallel_eval(circuit, env, 1)
        state = {
            name: bool(values[reg.data_in])
            for name, reg in circuit.registers.items()
        }
    return any(
        values[s] != values[i] for s, i in product.output_pairs
    )


# --------------------------------------------------------------- soundness


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_never_proves_inequivalent_pairs(seed):
    """The cardinal soundness property, checked against the oracle."""
    spec = random_sequential_circuit(seed, n_inputs=2, n_regs=3, n_gates=8)
    impl, _ = inject_distinguishable_fault(spec, seed=seed)
    product = build_product(spec, impl, match_outputs="order")
    oracle = explicit_check_equivalence(product)
    result = VanEijkVerifier().verify_product(product)
    if oracle.refuted:
        assert result.equivalent is not True
        if result.refuted:
            assert replay(product, result.counterexample)
    else:
        assert result.equivalent is not False


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_proves_synthesized_pairs(seed):
    """Completeness on the paper's target class: retimed+optimized pairs."""
    spec = random_sequential_circuit(seed, n_inputs=2, n_regs=4, n_gates=10)
    impl = synthesize(spec, retime_moves=3, optimize_level=2, seed=seed)
    result = check_equivalence_van_eijk(spec, impl, match_outputs="order")
    assert result.proved


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_complete_for_combinational_optimization(seed):
    """§6: the method is complete for combinationally optimized circuits."""
    spec = random_sequential_circuit(seed, n_inputs=3, n_regs=4, n_gates=10)
    impl = optimize(spec, level=2, seed=seed + 1)
    result = VanEijkVerifier(use_retiming=False).verify(
        spec, impl, match_outputs="order"
    )
    assert result.proved


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_complete_for_retiming(seed):
    """§6: the method is complete for retimed circuits."""
    spec = random_sequential_circuit(seed, n_inputs=2, n_regs=4, n_gates=10)
    impl = retime(spec, moves=4, seed=seed + 1)
    result = VanEijkVerifier(use_retiming=True).verify(
        spec, impl, match_outputs="order"
    )
    assert result.proved


def test_simulation_refutation_produces_replayable_trace():
    spec = counter_circuit(3)
    impl, _ = inject_distinguishable_fault(spec, seed=11)
    product = build_product(spec, impl, match_outputs="order")
    result = VanEijkVerifier().verify_product(product)
    assert result.refuted
    assert result.details.get("refuted_by") == "simulation"
    assert replay(product, result.counterexample)


# --------------------------------------------------------------- options


def test_option_simulation_off_still_sound():
    spec = counter_circuit(3)
    impl = optimize(spec, level=2, seed=1)
    for use_simulation in (False, True):
        result = VanEijkVerifier(use_simulation=use_simulation).verify(
            spec, impl, match_outputs="order"
        )
        assert result.proved


def test_option_fundeps_off_still_sound():
    spec = counter_circuit(3)
    impl = optimize(spec, level=2, seed=2)
    for use_fundeps in (False, True):
        result = VanEijkVerifier(use_fundeps=use_fundeps).verify(
            spec, impl, match_outputs="order"
        )
        assert result.proved


def test_fundeps_record_substitutions():
    spec = counter_circuit(4)
    impl = retime(spec, moves=2, seed=3)
    with_fd = VanEijkVerifier(use_fundeps=True).verify(
        spec, impl, match_outputs="order"
    )
    without_fd = VanEijkVerifier(use_fundeps=False).verify(
        spec, impl, match_outputs="order"
    )
    assert with_fd.proved and without_fd.proved
    assert with_fd.details["substitutions"] > 0
    assert without_fd.details["substitutions"] == 0


def test_reach_bound_options_validated():
    spec = toggle_circuit()
    with pytest.raises(ValueError):
        VanEijkVerifier(reach_bound="bogus").verify(spec, spec.copy())


def test_node_budget_abort():
    spec = counter_circuit(6)
    impl = optimize(spec, level=2, seed=4)
    result = VanEijkVerifier(node_limit=50).verify(
        spec, impl, match_outputs="order"
    )
    assert result.inconclusive
    assert "aborted" in result.details


def test_time_budget_abort():
    spec = counter_circuit(8)
    impl = optimize(spec, level=2, seed=5)
    result = VanEijkVerifier(time_limit=0.0).verify(
        spec, impl, match_outputs="order"
    )
    assert result.inconclusive


def test_interface_mismatch_raises():
    a = toggle_circuit()
    b = toggle_circuit()
    b.add_input("extra")
    with pytest.raises(VerificationError):
        VanEijkVerifier().verify(a, b)


# --------------------------------------------------------------- metrics


def test_eqs_percent_high_for_identical():
    spec = counter_circuit(4)
    result = VanEijkVerifier().verify(spec, spec.copy(), match_outputs="order")
    assert result.proved
    assert result.details["eqs_percent"] == 100.0


def test_eqs_percent_drops_with_optimization():
    spec = counter_circuit(5)
    light = VanEijkVerifier().verify(
        spec, retime(spec, moves=2, seed=6), match_outputs="order"
    )
    heavy = VanEijkVerifier().verify(
        spec, synthesize(spec, retime_moves=2, optimize_level=2, seed=6),
        match_outputs="order",
    )
    assert light.proved and heavy.proved
    assert heavy.details["eqs_percent"] <= light.details["eqs_percent"]


def test_result_repr_and_flags():
    spec = toggle_circuit()
    result = VanEijkVerifier().verify(spec, spec.copy())
    assert result.proved and not result.refuted and not result.inconclusive
    assert "EQUIVALENT" in repr(result)
    assert result.method == "van_eijk"
    assert result.seconds >= 0
