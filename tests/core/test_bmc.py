"""Unrolling and bounded model checking tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bmc import bmc_refute, check_inequivalence_bmc
from repro.errors import NetlistError
from repro.netlist import SequentialSimulator, build_product, single_eval
from repro.netlist.unroll import unroll
from repro.reach import explicit_check_equivalence
from repro.transform import inject_distinguishable_fault, synthesize

from ..netlist.helpers import counter_circuit, random_sequential_circuit, toggle_circuit


# ------------------------------------------------------------------ unroll


def test_unroll_shape():
    c = toggle_circuit()
    u, net_at = unroll(c, 3)
    assert u.num_registers == 0
    assert len(u.inputs) == 3          # en@0..2
    assert len(u.outputs) == 3         # out@0..2
    assert net_at("q", 1) == "q@1"
    assert "q@2" in u.gates


def test_unroll_matches_sequential_simulation():
    c = counter_circuit(3)
    frames = 5
    u, net_at = unroll(c, frames)
    import random

    rng = random.Random(4)
    inputs = [{net: rng.random() < 0.5 for net in c.inputs}
              for _ in range(frames)]
    # Sequential reference.
    state = {net: reg.init for net, reg in c.registers.items()}
    expected = []
    for frame_inputs in inputs:
        values = single_eval(c, frame_inputs, state)
        expected.append(values)
        state = {net: values[reg.data_in]
                 for net, reg in c.registers.items()}
    # Unrolled combinational evaluation.
    unrolled_env = {}
    for t, frame_inputs in enumerate(inputs):
        for net, value in frame_inputs.items():
            unrolled_env[net_at(net, t)] = value
    values = single_eval(u, unrolled_env, {})
    for t in range(frames):
        for net in c.signals():
            assert values[net_at(net, t)] == expected[t][net], (net, t)


def test_unroll_free_initial_state():
    c = toggle_circuit()
    u, net_at = unroll(c, 2, initial="free")
    assert net_at("q", 0) in u.inputs


def test_unroll_validation():
    c = toggle_circuit()
    with pytest.raises(NetlistError):
        unroll(c, 0)
    with pytest.raises(NetlistError):
        unroll(c, 2, initial="banana")


# ------------------------------------------------------------------ BMC


def replay(product, trace):
    from repro.netlist.vcd import replay_frames

    frames = replay_frames(product.circuit, trace.full_sequence())
    final = frames[-1]
    return any(final[s] != final[i] for s, i in product.output_pairs)


def test_bmc_refutes_mutation_with_shortest_cex():
    spec = counter_circuit(3)
    impl, _ = inject_distinguishable_fault(spec, seed=4)
    product = build_product(spec, impl, match_outputs="order")
    result = bmc_refute(product, max_depth=40)
    assert result.refuted
    assert replay(product, result.counterexample)
    # Shortest: no counterexample exists at any smaller depth, which the
    # oracle's BFS depth confirms.
    oracle = explicit_check_equivalence(product)
    assert oracle.refuted
    assert result.details["cex_depth"] == oracle.counterexample.length


def test_bmc_inconclusive_on_equivalent_pair():
    spec = counter_circuit(3)
    impl = synthesize(spec, retime_moves=2, optimize_level=2, seed=6)
    result = check_inequivalence_bmc(spec, impl, max_depth=10)
    assert result.inconclusive
    assert result.details.get("bound_reached") == 10


def test_bmc_bound_too_small_misses_deep_bug():
    # Flip the MSB's init: the outputs diverge only once the carry reaches
    # it, deeper than a tiny bound.
    spec = counter_circuit(4)
    impl = spec.copy()
    impl.registers["q3"].init = True
    product = build_product(spec, impl, match_outputs="order")
    shallow = bmc_refute(product, max_depth=1)
    deep = bmc_refute(product, max_depth=4)
    assert deep.refuted or shallow.refuted  # q3 is the output: depth 1 hits
    # The real assertion: depth found by BMC equals the oracle's.
    oracle = explicit_check_equivalence(product)
    found = deep if deep.refuted else shallow
    assert found.details["cex_depth"] == oracle.counterexample.length


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_bmc_agrees_with_oracle(seed):
    spec = random_sequential_circuit(seed, n_inputs=2, n_regs=3, n_gates=8)
    impl, _ = inject_distinguishable_fault(spec, seed=seed)
    product = build_product(spec, impl, match_outputs="order")
    oracle = explicit_check_equivalence(product)
    result = bmc_refute(product, max_depth=34)
    if oracle.refuted and oracle.counterexample.length <= 34:
        assert result.refuted
        assert result.details["cex_depth"] == oracle.counterexample.length
        assert replay(product, result.counterexample)
    if oracle.proved:
        assert not result.refuted


def test_bmc_time_budget():
    spec = counter_circuit(5)
    impl = synthesize(spec, retime_moves=2, optimize_level=1, seed=9)
    result = check_inequivalence_bmc(spec, impl, max_depth=64,
                                     time_limit=0.0)
    assert result.inconclusive
    assert "aborted" in result.details
