"""Incremental SAT refinement engine: resource regressions and identity.

The incremental engine must (a) build exactly one solver and one frame
encoding per ``compute()`` call — that is the whole point of the rework —
and (b) compute the *identical* partition and verdict as the monolithic
solver-per-round baseline on every circuit we can throw at it: random
pairs, the table-1 suite, and the persisted fuzz corpus.
"""

import os

from hypothesis import given, settings, strategies as st
import pytest

from repro.circuits import row_by_name
from repro.core import check_equivalence_sat_sweep
from repro.core.satbackend import SatCorrespondence
from repro.fuzz.corpus import discover
from repro.fuzz.generate import build_pair
from repro.fuzz.harness import DEFAULT_FUZZ_ENGINES
from repro.netlist import build_product
from repro.transform import optimize

from ..netlist.helpers import counter_circuit, random_sequential_circuit

CORPUS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "corpus")


def product_for(seed):
    spec = random_sequential_circuit(seed, n_inputs=2, n_regs=3, n_gates=8)
    impl = optimize(spec, level=2, seed=seed + 1)
    return build_product(spec, impl, match_outputs="order")


def partition_netsets(product, incremental):
    engine = SatCorrespondence(product, incremental=incremental)
    classes, _ = engine.compute()
    return {
        frozenset((sig.net, sig.complemented) for sig in cls)
        for cls in classes
    }


# ------------------------------------------------------- resource regressions


@pytest.mark.parametrize("k", [1, 2])
def test_one_solver_and_one_encoding_per_compute(k):
    """The tentpole guarantee: no per-round rebuilds, ever."""
    spec = counter_circuit(4)
    impl = optimize(spec, level=2, seed=3)
    product = build_product(spec, impl, match_outputs="order")
    engine = SatCorrespondence(product, k=k)
    engine.compute()
    assert engine.stats["solver_constructions"] == 1
    assert engine.stats["frame_encodings"] == 1
    assert engine.stats["rounds"] >= 1
    assert engine.stats["sat_queries"] > 0


def test_monolithic_baseline_rebuilds_per_round():
    """The contrast that makes the regression test meaningful."""
    spec = counter_circuit(4)
    impl = optimize(spec, level=2, seed=3)
    product = build_product(spec, impl, match_outputs="order")
    engine = SatCorrespondence(product, incremental=False)
    engine.compute()
    # Initial split + one construction per refinement round.
    assert engine.stats["solver_constructions"] == 1 + engine.stats["rounds"]
    assert engine.stats["frame_encodings"] == engine.stats["solver_constructions"]


def test_cex_replay_splits_are_exercised():
    """On a pair that actually refines, witnesses must be replayed.

    A deliberately weak simulation seeding (two 1-wide frames) leaves T0
    coarse, so the SAT queries have real splitting to do.
    """
    spec = counter_circuit(4)
    impl = optimize(spec, level=2, seed=3)
    product = build_product(spec, impl, match_outputs="order")
    engine = SatCorrespondence(product, sim_frames=2, sim_width=1)
    engine.compute()
    stats = engine.solver_stats()
    assert stats["cex_patterns"] >= 1
    assert stats["cex_class_splits"] >= 1
    assert stats["conflicts"] >= 0 and stats["learned"] >= 0


# ---------------------------------------------------------- identity checks


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_incremental_and_monolithic_partitions_identical(seed):
    """The maximum relation is unique; both engines must land on it."""
    product = product_for(seed)
    assert partition_netsets(product, True) == partition_netsets(
        product, False)


@pytest.mark.parametrize("name", ["s298", "s386"])
def test_suite_verdicts_and_class_counts_agree(name):
    spec, impl = row_by_name(name).pair()
    inc = check_equivalence_sat_sweep(spec, impl, match_outputs="order",
                                      incremental=True)
    mono = check_equivalence_sat_sweep(spec, impl, match_outputs="order",
                                       incremental=False)
    assert inc.equivalent == mono.equivalent
    assert inc.details["classes"] == mono.details["classes"]
    # And the new engine really was cheaper to set up.
    assert (inc.details["solver_stats"]["solver_constructions"]
            < mono.details["solver_stats"]["solver_constructions"])


@pytest.mark.parametrize("entry", discover(CORPUS_DIR), ids=lambda e: e.id)
def test_corpus_verdicts_agree(entry):
    spec, impl = build_pair(entry.recipe)
    inc = check_equivalence_sat_sweep(spec, impl, match_outputs="order",
                                      incremental=True)
    mono = check_equivalence_sat_sweep(spec, impl, match_outputs="order",
                                       incremental=False)
    assert inc.equivalent == mono.equivalent
    assert inc.details["classes"] == mono.details["classes"]


# ------------------------------------------------------- progress / plumbing


def test_progress_reports_refinement_rounds_with_solver_stats():
    spec = counter_circuit(4)
    impl = optimize(spec, level=2, seed=3)
    events = []

    def progress(kind, **data):
        events.append((kind, data))

    result = check_equivalence_sat_sweep(spec, impl, match_outputs="order",
                                         progress=progress)
    assert result.proved
    kinds = [kind for kind, _ in events]
    assert "initial_split" in kinds
    rounds = [data for kind, data in events if kind == "refinement_round"]
    assert rounds
    assert [data["round"] for data in rounds] == list(
        range(1, len(rounds) + 1))
    for data in rounds:
        assert "classes" in data and "conflicts" in data
        assert "sat_queries" in data and "cex_patterns" in data
    assert rounds[-1]["changed"] is False


def test_verdict_details_carry_solver_stats():
    spec = counter_circuit(4)
    impl = optimize(spec, level=2, seed=3)
    result = check_equivalence_sat_sweep(spec, impl, match_outputs="order")
    stats = result.details["solver_stats"]
    assert stats["solver_constructions"] == 1
    assert stats["frame_encodings"] == 1
    assert stats["rounds"] >= 1


def test_sat_sweep_in_default_fuzz_battery():
    lanes = {label: (method, options)
             for label, method, options in DEFAULT_FUZZ_ENGINES}
    assert lanes["sat_sweep"][0] == "sat_sweep"
    # The battery also exercises the parallel refinement engine.
    method, options = lanes["sat_sweep_par2"]
    assert method == "sat_sweep"
    assert options["refine_workers"] == 2
    # And, where numpy imports, the matrix replay backend on the same pool.
    from repro.netlist.simulate import _numpy

    if _numpy() is not None:
        method, options = lanes["sat_sweep_matrix"]
        assert method == "sat_sweep"
        assert options["sim_backend"] == "matrix"
        assert options["refine_workers"] == 2
    else:
        assert "sat_sweep_matrix" not in lanes
