"""SAT refinement backend: agreement with the BDD backend, soundness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import check_equivalence_sat_sweep, compute_fixpoint
from repro.core.satbackend import SatCorrespondence
from repro.core.timeframe import TimeFrame
from repro.errors import ResourceBudgetExceeded
from repro.netlist import build_product
from repro.reach import explicit_check_equivalence
from repro.transform import inject_distinguishable_fault, optimize, synthesize

from ..netlist.helpers import counter_circuit, random_sequential_circuit, toggle_circuit


def bdd_partition_netsets(product):
    frame = TimeFrame(product.circuit.copy())
    fix = compute_fixpoint(frame, frame.build_signal_functions())
    return {
        frozenset(net for fn in cls for net, _ in fn.members)
        for cls in fix.partition.classes
    }


def sat_partition_netsets(product):
    engine = SatCorrespondence(product)
    classes, _ = engine.compute()
    return {frozenset(sig.net for sig in cls) for cls in classes}


def normalize(netsets):
    cleaned = {frozenset(c - {"@const"}) for c in netsets}
    return {c for c in cleaned if c}


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_backends_compute_identical_partitions(seed):
    """The maximum relation is unique — both backends must find it."""
    spec = random_sequential_circuit(seed, n_inputs=2, n_regs=3, n_gates=8)
    impl = optimize(spec, level=2, seed=seed + 1)
    product = build_product(spec, impl, match_outputs="order")
    assert normalize(bdd_partition_netsets(product)) == normalize(
        sat_partition_netsets(product)
    )


def test_proves_optimized_counter():
    spec = counter_circuit(4)
    impl = optimize(spec, level=2, seed=3)
    result = check_equivalence_sat_sweep(spec, impl, match_outputs="order")
    assert result.proved
    assert result.details["classes"] >= 1


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_sound_on_mutations(seed):
    spec = random_sequential_circuit(seed, n_inputs=2, n_regs=3, n_gates=8)
    impl, _ = inject_distinguishable_fault(spec, seed=seed)
    product = build_product(spec, impl, match_outputs="order")
    oracle = explicit_check_equivalence(product)
    result = check_equivalence_sat_sweep(spec, impl, match_outputs="order")
    if oracle.refuted:
        # Sound: never proves an inequivalent pair.
        assert result.equivalent is not True


def test_constant_class_contains_stuck_signals():
    from repro.netlist import Circuit, GateType

    c = Circuit("stuck")
    c.add_input("x")
    c.add_gate("one", GateType.CONST1, [])
    c.add_register("r", "one", init=True)
    c.add_gate("o", GateType.BUF, ["r"])
    c.add_output("o")
    product = build_product(c, c.copy(), match_outputs="order")
    classes = sat_partition_netsets(product)
    const_class = next(cls for cls in classes if "@const" in cls)
    assert {"s.r", "i.r"} <= const_class


def test_iteration_budget():
    spec = counter_circuit(5)
    impl = optimize(spec, level=2, seed=1)
    with pytest.raises(ResourceBudgetExceeded):
        product = build_product(spec, impl, match_outputs="order")
        engine = SatCorrespondence(product)
        # Pre-splitting only by simulation; one refinement round cannot be
        # enough for a 5-bit counter without seeding... force it by lying:
        engine.compute(max_iterations=0)


def test_time_budget():
    spec = counter_circuit(6)
    impl = optimize(spec, level=2, seed=2)
    result = check_equivalence_sat_sweep(spec, impl, match_outputs="order",
                                         time_limit=0.0)
    assert result.inconclusive
    assert "aborted" in result.details


def test_inconclusive_not_refuted_on_undecidable():
    from repro.circuits import onehot_ring_pair

    spec, impl = onehot_ring_pair(enable=True)
    result = check_equivalence_sat_sweep(spec, impl, match_outputs="order")
    assert result.inconclusive or result.proved
    assert result.equivalent is not False


def test_result_metadata():
    spec = toggle_circuit()
    result = check_equivalence_sat_sweep(spec, spec.copy())
    assert result.proved
    assert result.method == "van_eijk_sat"
    assert result.iterations >= 1
    assert result.details["functions"] > 0


# ---------------------------------------------------------- Fig. 4 with SAT


def test_sat_retiming_unlocks_fig3():
    from repro.circuits import fig3_pair

    spec, impl = fig3_pair()
    off = check_equivalence_sat_sweep(spec, impl, match_outputs="order")
    assert off.inconclusive
    on = check_equivalence_sat_sweep(spec, impl, match_outputs="order",
                                     use_retiming=True)
    assert on.proved
    assert on.details["retime_rounds"] == 1


def test_sat_retiming_rounds_capped():
    from repro.circuits import onehot_ring_pair

    spec, impl = onehot_ring_pair(enable=False)
    capped = check_equivalence_sat_sweep(spec, impl, match_outputs="order",
                                         use_retiming=True,
                                         max_retiming_rounds=1)
    assert capped.inconclusive
    full = check_equivalence_sat_sweep(spec, impl, match_outputs="order",
                                       use_retiming=True,
                                       max_retiming_rounds=4)
    assert full.proved
    assert full.details["retime_rounds"] == 2


def test_sat_and_bdd_fig4_agree_on_retimed_suite():
    from repro.circuits import row_by_name
    from repro.core import VanEijkVerifier
    from repro.transform import retime

    row = row_by_name("s386")
    spec = row.spec()
    impl = retime(spec, moves=4, seed=21)
    bdd = VanEijkVerifier().verify(spec, impl, match_outputs="order")
    sat = check_equivalence_sat_sweep(spec, impl, match_outputs="order",
                                      use_retiming=True)
    assert bdd.proved and sat.proved
