"""Parallel refinement engine: identity with the serial fixed point.

The whole value proposition of :class:`ParallelSatCorrespondence` is that
running a round's class checks through the work-stealing pool changes
*nothing* observable but wall-clock time: same verdicts, same final
partition, same fixed point — on random pairs, the Table-1 suite and the
persisted fuzz corpus, at any batch size and any stealing order.  These
tests also pin the resource model (1 master + N worker solver
constructions, +1 per respawn), the per-round worker telemetry, crash
degradation (re-queue the dead worker's batch, respawn, keep going), and
pool hygiene (no live children after ``compute()``, even on budget
aborts).
"""

import os

from hypothesis import given, settings, strategies as st
import pytest

from repro.circuits import row_by_name
from repro.core import check_equivalence_sat_sweep
from repro.core.parallel import ParallelSatCorrespondence, _make_batches
from repro.core.satbackend import SatCorrespondence
from repro.errors import ResourceBudgetExceeded
from repro.fuzz.corpus import discover
from repro.fuzz.generate import build_pair
from repro.netlist import build_product
from repro.transform import optimize

from ..netlist.helpers import counter_circuit, random_sequential_circuit

CORPUS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "corpus")

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="parallel refinement requires fork")


def product_for(seed):
    spec = random_sequential_circuit(seed, n_inputs=2, n_regs=3, n_gates=8)
    impl = optimize(spec, level=2, seed=seed + 1)
    return build_product(spec, impl, match_outputs="order")


def netsets(classes):
    return {
        frozenset((sig.net, sig.complemented) for sig in cls)
        for cls in classes
    }


def suite_product(name):
    spec, impl = row_by_name(name).pair()
    return build_product(spec, impl, match_outputs="order")


# ------------------------------------------------------------- construction


def test_refine_workers_must_be_positive():
    product = product_for(0)
    with pytest.raises(ValueError, match=">= 1"):
        ParallelSatCorrespondence(product, refine_workers=0)


def test_parallel_engine_requires_incremental_mode():
    product = product_for(0)
    with pytest.raises(ValueError, match="incremental"):
        ParallelSatCorrespondence(product, refine_workers=2,
                                  incremental=False)


def test_sweep_rejects_workers_on_monolithic_baseline():
    spec = counter_circuit(3)
    impl = optimize(spec, level=2, seed=1)
    with pytest.raises(ValueError, match="incremental"):
        check_equivalence_sat_sweep(spec, impl, match_outputs="order",
                                    refine_workers=2, incremental=False)
    with pytest.raises(ValueError, match=">= 0"):
        check_equivalence_sat_sweep(spec, impl, match_outputs="order",
                                    refine_workers=-1)


def test_batch_packing_is_deterministic_and_bounded():
    classes = [["a"], ["b"] * 5, ["c"] * 3, ["d"] * 3, ["e"] * 2]
    batches = _make_batches(classes, [1, 2, 3, 4], 2, 4)
    assert batches == _make_batches(classes, [1, 2, 3, 4], 2, 4)
    assert sorted(cid for batch in batches for cid in batch) == [1, 2, 3, 4]
    # Largest-first greedy fill at cap 4: the size-5 class (load 4) fills
    # a batch alone; each size-3 class (load 2) pairs greedily; the size-2
    # (load 1) joins the second size-3's batch.
    assert batches == [[1], [2, 3], [4]]
    # A class heavier than the cap still lands (alone) in a batch.
    assert _make_batches(classes, [1], 2, 1) == [[1]]
    # Auto cap spreads the total load into multiple batches per worker so
    # the pool has stealing slack.
    auto = _make_batches(classes, [1, 2, 3, 4], 1, 0)
    assert sorted(cid for batch in auto for cid in batch) == [1, 2, 3, 4]
    assert len(auto) >= 3


# ---------------------------------------------------------- identity checks


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_parallel_and_serial_partitions_identical(seed):
    """The greatest fixed point is unique; worker count cannot move it."""
    product = product_for(seed)
    serial = SatCorrespondence(product, sim_frames=2, sim_width=1)
    serial_classes, _ = serial.compute()
    par = ParallelSatCorrespondence(product, refine_workers=2,
                                    sim_frames=2, sim_width=1)
    par_classes, _ = par.compute()
    assert netsets(par_classes) == netsets(serial_classes)


@pytest.mark.parametrize("name", ["s298", "s386"])
def test_suite_verdicts_and_class_counts_agree(name):
    spec, impl = row_by_name(name).pair()
    serial = check_equivalence_sat_sweep(spec, impl, match_outputs="order")
    par = check_equivalence_sat_sweep(spec, impl, match_outputs="order",
                                      refine_workers=2)
    assert par.equivalent == serial.equivalent
    assert par.details["classes"] == serial.details["classes"]
    assert par.details["refine_workers"] == 2
    assert "refine_workers" not in serial.details


@pytest.mark.parametrize("entry", discover(CORPUS_DIR), ids=lambda e: e.id)
def test_corpus_verdicts_agree(entry):
    spec, impl = build_pair(entry.recipe)
    serial = check_equivalence_sat_sweep(spec, impl, match_outputs="order")
    par = check_equivalence_sat_sweep(spec, impl, match_outputs="order",
                                      refine_workers=2)
    assert par.equivalent == serial.equivalent
    assert par.details["classes"] == serial.details["classes"]


# ----------------------------------------------------- resources / telemetry


def test_pool_costs_one_construction_per_worker():
    """1 master + N workers, each with exactly one frame encoding."""
    product = suite_product("s298")
    engine = ParallelSatCorrespondence(product, refine_workers=2,
                                       sim_frames=2, sim_width=1)
    engine.compute()
    assert engine.stats["solver_constructions"] == 3
    assert engine.stats["frame_encodings"] == 3
    assert engine.stats["rounds"] >= 1


def test_refinement_rounds_carry_worker_telemetry():
    product = suite_product("s298")
    events = []
    engine = ParallelSatCorrespondence(
        product, refine_workers=2, sim_frames=2, sim_width=1,
        progress=lambda kind, **data: events.append((kind, data)))
    engine.compute()
    rounds = [data for kind, data in events if kind == "refinement_round"]
    assert rounds
    parallel_rounds = [data for data in rounds if data["workers"] == 2]
    assert parallel_rounds, "no round actually fanned out"
    for data in parallel_rounds:
        assert len(data["worker_seconds"]) == 2
        assert data["batches"] >= 1
        assert data["round_seconds"] > 0
        assert data["speedup"] > 0
        assert "sat_queries" in data and "classes" in data
    # The pool is gone and reaped once the fixed point is reached.
    assert engine._pool is None


def test_low_fanout_rounds_stay_serial():
    """Rounds under the fan-out threshold keep ``workers == 0`` — the pool
    is never even spawned."""
    spec = counter_circuit(2)
    events = []
    engine = ParallelSatCorrespondence(
        build_product(spec, spec.copy(), match_outputs="order"),
        refine_workers=2,
        progress=lambda kind, **data: events.append((kind, data)))
    engine.min_parallel_classes = 10 ** 9
    engine.compute()
    rounds = [data for kind, data in events if kind == "refinement_round"]
    assert rounds
    assert all(data["workers"] == 0 for data in rounds)
    assert engine.stats["solver_constructions"] == 1


def test_broken_pool_degrades_to_identical_serial_result():
    product = suite_product("s298")
    engine = ParallelSatCorrespondence(product, refine_workers=2,
                                       sim_frames=2, sim_width=1)
    engine._pool_broken = True
    classes, _ = engine.compute()
    baseline = SatCorrespondence(product, sim_frames=2, sim_width=1)
    expected, _ = baseline.compute()
    assert netsets(classes) == netsets(expected)
    assert engine.stats["solver_constructions"] == 1


def test_budget_abort_tears_the_pool_down():
    product = suite_product("s298")
    engine = ParallelSatCorrespondence(product, refine_workers=2,
                                       sim_frames=2, sim_width=1,
                                       time_limit=0.0)
    with pytest.raises(ResourceBudgetExceeded):
        engine.compute()
    assert engine._pool is None


def test_close_is_idempotent():
    product = product_for(1)
    engine = ParallelSatCorrespondence(product, refine_workers=2)
    engine.compute()
    engine.close()
    engine.close()
    assert engine._pool is None


# ------------------------------------------------- stealing order / respawn


def test_batch_size_never_changes_the_partition():
    """Any batch granularity — one class per batch, everything in one
    batch, or the auto cap — steals in a different order yet lands on the
    identical greatest fixed point."""
    product = suite_product("s298")
    baseline = SatCorrespondence(product, sim_frames=2, sim_width=1)
    expected, _ = baseline.compute()
    partitions = []
    for refine_batch in (1, 3, 10 ** 9, 0):
        engine = ParallelSatCorrespondence(
            product, refine_workers=2, refine_batch=refine_batch,
            sim_frames=2, sim_width=1)
        classes, _ = engine.compute()
        partitions.append(netsets(classes))
    assert all(p == netsets(expected) for p in partitions)


def test_repeated_runs_are_deterministic():
    product = product_for(3)
    runs = []
    for _ in range(2):
        engine = ParallelSatCorrespondence(product, refine_workers=2,
                                           refine_batch=1,
                                           sim_frames=2, sim_width=1)
        classes, _ = engine.compute()
        runs.append(netsets(classes))
    assert runs[0] == runs[1]


def test_worker_crash_requeues_batch_and_respawns():
    """SIGKILLing one pool worker mid-fixpoint must not change the result:
    the dead worker's batch is re-queued, the worker re-forked, and a
    ``worker_respawn`` event (plus construction/encoding bumps) recorded —
    no serial fallback."""
    product = suite_product("s298")
    baseline = SatCorrespondence(product, sim_frames=2, sim_width=1)
    expected, _ = baseline.compute()
    events = []
    engine = ParallelSatCorrespondence(
        product, refine_workers=2, refine_batch=1,
        sim_frames=2, sim_width=1,
        progress=lambda kind, **data: events.append((kind, data)))
    engine._ensure_pool()
    assert engine._pool is not None
    victim = engine._pool._workers[0]
    os.kill(victim.proc.pid, 9)
    victim.proc.join(5.0)
    classes, _ = engine.compute()
    assert netsets(classes) == netsets(expected)
    assert engine.stats["worker_respawns"] >= 1
    respawns = [data for kind, data in events if kind == "worker_respawn"]
    assert respawns and respawns[0]["worker"] == victim.index
    assert not any(kind == "refinement_pool_fallback"
                   for kind, _ in events)
    # The rebuild is costed honestly: 1 master + 2 spawned + >=1 respawn.
    assert engine.stats["solver_constructions"] >= 4
    assert engine._pool is None  # compute() closed the pool
