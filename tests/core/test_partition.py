"""Partition data structure unit tests."""

from repro.core.partition import Partition, SignalFunction


def fn(edge, nets=()):
    record = SignalFunction(edge)
    for net in nets:
        record.add_net(net, False)
    return record


def test_discrete_partition():
    fns = [fn(2), fn(4), fn(6)]
    p = Partition.discrete(fns)
    assert p.num_classes == 3
    assert p.num_functions == 3
    assert not p.nontrivial_classes()


def test_from_keys_groups():
    fns = [fn(2), fn(4), fn(6), fn(8)]
    p = Partition.from_keys(fns, key=lambda f: f.edge % 4)
    assert p.num_classes == 2
    assert p.same_class(2, 6)
    assert p.same_class(4, 8)
    assert not p.same_class(2, 4)


def test_class_of_and_same_class():
    fns = [fn(2), fn(4)]
    p = Partition([[fns[0], fns[1]]])
    cls = p.class_of(2)
    assert len(cls) == 2
    assert p.same_class(2, 4)
    assert p.class_of(99) is None
    assert not p.same_class(2, 99)


def test_refine_splits_and_reports_change():
    fns = [fn(2), fn(4), fn(6)]
    p = Partition([fns])

    def splitter(cls):
        return [[f for f in cls if f.edge <= 4], [f for f in cls if f.edge > 4]]

    refined, changed = p.refine(splitter)
    assert changed
    assert refined.num_classes == 2
    again, changed2 = refined.refine(lambda cls: [cls])
    assert not changed2


def test_refine_skips_singletons():
    calls = []
    p = Partition([[fn(2)], [fn(4), fn(6)]])

    def splitter(cls):
        calls.append(len(cls))
        return [cls]

    p.refine(splitter)
    assert calls == [2]


def test_signal_function_members_and_registers():
    record = SignalFunction(10)
    record.add_net("a", False, register_var=3)
    record.add_net("b", True)
    assert record.nets() == ["a", "b"]
    assert record.register_vars == [(3, False)]


def test_stats():
    p = Partition([[fn(2), fn(4)], [fn(6)]])
    stats = p.stats()
    assert stats["classes"] == 2
    assert stats["functions"] == 3
    assert stats["largest_class"] == 2
    assert stats["nontrivial_classes"] == 1


def test_empty_classes_dropped():
    p = Partition([[], [fn(2)]])
    assert p.num_classes == 1
