"""Time-frame model tests: the Fig. 1 identity and polarity normalization."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.timeframe import TimeFrame
from repro.netlist import Circuit, GateType, build_product, single_eval

from ..netlist.helpers import counter_circuit, random_sequential_circuit, toggle_circuit


def env_from(frame, state, inputs_now, inputs_next):
    env = {}
    for net, var in frame.state_id.items():
        env[var] = state[net]
    for net, var in frame.in_id.items():
        env[var] = inputs_now[net]
    for net, var in frame.next_in_id.items():
        env[var] = inputs_next[net]
    return env


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_fig1_identity(seed):
    """ν_v(s, x_t, x_{t+1}) must equal f_v(δ(s, x_t), x_{t+1})."""
    circuit = random_sequential_circuit(seed, n_inputs=2, n_regs=3, n_gates=8)
    frame = TimeFrame(circuit)
    mgr = frame.manager
    import random as pyrandom

    rng = pyrandom.Random(seed + 7)
    for _ in range(6):
        state = {net: rng.random() < 0.5 for net in circuit.registers}
        x_now = {net: rng.random() < 0.5 for net in circuit.inputs}
        x_next = {net: rng.random() < 0.5 for net in circuit.inputs}
        env = env_from(frame, state, x_now, x_next)
        # Direct evaluation of the circuit gives delta and the shifted frame.
        values_now = single_eval(circuit, x_now, state)
        next_state = {
            net: values_now[reg.data_in]
            for net, reg in circuit.registers.items()
        }
        values_next = single_eval(circuit, x_next, next_state)
        for net in circuit.signals():
            nu = frame.nu(frame.f(net))
            assert mgr.evaluate(nu, env) == values_next[net], net


def test_f_matches_single_eval():
    circuit = counter_circuit(3)
    frame = TimeFrame(circuit)
    mgr = frame.manager
    for bits in itertools.product([False, True], repeat=4):
        state = {"q0": bits[0], "q1": bits[1], "q2": bits[2]}
        inputs = {"en": bits[3]}
        expected = single_eval(circuit, inputs, state)
        env = env_from(frame, state, inputs, {"en": False})
        for net in circuit.signals():
            assert mgr.evaluate(frame.f(net), env) == expected[net], net


def test_ref_value_matches_initial_state():
    circuit = toggle_circuit()
    frame = TimeFrame(circuit, seed=5)
    # At the reference point the register q holds its initial value 0.
    assert frame.ref_value("q") is False
    assert frame.ref_value("out") is False
    # d = en XOR q = en at s0; must match the reference input.
    en_ref = frame.ref_env[frame.in_id["en"]]
    assert frame.ref_value("d") == en_ref


def test_restrict_to_initial():
    circuit = toggle_circuit()
    frame = TimeFrame(circuit)
    mgr = frame.manager
    # f_q restricted to s0 is constant 0; f_d restricted is the input en.
    assert frame.restrict_to_initial(frame.f("q")) == mgr.false
    assert frame.restrict_to_initial(frame.f("d")) == mgr.var_edge(
        frame.in_id["en"]
    )


def test_signatures_cover_all_signals_and_respect_polarity():
    circuit = counter_circuit(3)
    frame = TimeFrame(circuit, sim_frames=8, sim_width=16)
    functions = frame.build_signal_functions()
    nets_seen = {net for fn in functions for net, _ in fn.members}
    assert set(circuit.signals()) | {"@const"} == nets_seen
    # Normalized signatures have bit (frame 0, pattern 0) == 1 by def of
    # polarity normalization at the reference point.
    total_bits = frame.sim_frames * frame.sim_width
    for fn in functions:
        assert (fn.signature >> (total_bits - frame.sim_width)) & 1 == 1


def test_identical_functions_share_record():
    circuit = Circuit("dup")
    circuit.add_input("x")
    circuit.add_gate("g1", GateType.NOT, ["x"])
    circuit.add_gate("g2", GateType.NOT, ["x"])
    circuit.add_gate("g3", GateType.BUF, ["x"])
    circuit.add_output("g1")
    frame = TimeFrame(circuit)
    functions = frame.build_signal_functions()
    by_nets = {tuple(sorted(fn.nets())): fn for fn in functions}
    # g1/g2 identical; g3 and x identical; antivalence joins them all into
    # one record up to polarity: g1's normalized function equals x's when x0
    # fixes the polarity.
    joined = [fn for fn in functions if len(fn.members) >= 2]
    assert joined, by_nets


def test_add_gate_signal_extends_model():
    circuit = toggle_circuit()
    frame = TimeFrame(circuit)
    edge = frame.add_gate_signal("extra", GateType.AND, ["en", "q"])
    assert frame.f("extra") == edge
    frame.resimulate()
    assert "extra" in frame.signatures


def test_product_timeframe_shares_inputs():
    c = toggle_circuit()
    product = build_product(c, c.copy())
    frame = TimeFrame(product.circuit.copy())
    assert set(frame.in_id) == {"en"}
    assert len(frame.state_id) == 2
