"""Format-independent AIG fingerprint and the job cache key built on it."""

from repro.interop import load_circuit, save_circuit
from repro.interop.fingerprint import aig_fingerprint
from repro.netlist import bench
from repro.service.job import CACHE_FORMAT_VERSION, JobSpec

BENCH_TEXT = """INPUT(a)
INPUT(b)
OUTPUT(y)
r = DFF(nx)
nx = XOR(a, r)
y = OR(nx, b)
"""


def _circuit(name="fp"):
    return bench.loads(BENCH_TEXT, name=name)


def test_fingerprint_is_identical_across_structural_formats(tmp_path):
    circuit = _circuit()
    prints = {aig_fingerprint(circuit)}
    for ext in (".bench", ".aag", ".aig"):
        path = tmp_path / ("fp" + ext)
        save_circuit(circuit, path)
        prints.add(aig_fingerprint(load_circuit(path)))
    assert len(prints) == 1


def test_fingerprint_ignores_names_and_comments():
    a = _circuit(name="one")
    b = _circuit(name="two")
    assert aig_fingerprint(a) == aig_fingerprint(b)
    renamed = a.renamed("px_", keep_inputs=True, name="three")
    assert aig_fingerprint(renamed) == aig_fingerprint(a)


def test_fingerprint_distinguishes_different_functions():
    other = bench.loads(BENCH_TEXT.replace("OR(nx, b)", "AND(nx, b)"),
                        name="fp")
    assert aig_fingerprint(other) != aig_fingerprint(_circuit())


def test_cache_key_is_format_independent(tmp_path):
    spec = _circuit("spec")
    impl = _circuit("impl")
    save_circuit(spec, tmp_path / "spec.aig")
    save_circuit(impl, tmp_path / "impl.aag")
    from_bench = JobSpec("j", spec, impl, method="sat_sweep")
    from_aiger = JobSpec("j", load_circuit(tmp_path / "spec.aig"),
                         load_circuit(tmp_path / "impl.aag"),
                         method="sat_sweep")
    assert from_bench.cache_key() == from_aiger.cache_key()
    # A different method or circuit must still miss.
    assert JobSpec("j", spec, impl, method="bmc").cache_key() \
        != from_bench.cache_key()


def test_cache_format_version_bumped_for_fingerprint_switch():
    # v2 = aig_fingerprint-based keys; bumping invalidates v1 entries
    # that hashed the bench text instead of the canonical AIG.
    assert CACHE_FORMAT_VERSION == 2
