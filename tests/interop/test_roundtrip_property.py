"""Property tests for the bench → aag → aig → Circuit round trip.

Satellite of the interop subsystem: for randomly generated benchmarks the
full format chain must be lossless — the ascii-born and binary-born
circuits are structurally identical, the canonical AIG fingerprint never
moves, and latch initial values survive — so every downstream consumer
(engines, FRAIG, daemon, fleet) can be format-blind by construction.
"""

from hypothesis import given, settings, strategies as st

from repro.circuits.generators import generate_benchmark
from repro.interop.aiger import (
    dumps_aiger_ascii,
    dumps_aiger_binary,
    loads_aiger,
)
from repro.interop.fingerprint import aig_fingerprint
from repro.netlist import bench
from repro.netlist.aig import from_circuit, to_circuit
from repro.netlist.strash import structural_fingerprint

seeds = st.integers(min_value=0, max_value=10 ** 6)


def _chain(circuit):
    """bench text -> ascii AIGER -> binary AIGER -> Circuit."""
    reparsed = bench.loads(bench.dumps(circuit), name=circuit.name)
    aig, _ = from_circuit(reparsed)
    text = dumps_aiger_ascii(aig)
    ascii_born = loads_aiger(text)
    blob = dumps_aiger_binary(ascii_born)
    binary_born = loads_aiger(blob)
    return aig, ascii_born, binary_born


@settings(max_examples=30, deadline=None)
@given(seeds)
def test_format_chain_preserves_structure(seed):
    circuit = generate_benchmark("rt{}".format(seed), n_regs=5, n_inputs=3,
                                 n_outputs=2, seed=seed)
    aig, ascii_born, binary_born = _chain(circuit)
    # One canonical fingerprint across every encoding in the chain.
    prints = {aig_fingerprint(circuit), aig_fingerprint(aig),
              aig_fingerprint(ascii_born), aig_fingerprint(binary_born)}
    assert len(prints) == 1
    # The two AIGER-born circuits are *structurally* identical, not just
    # functionally equivalent.
    from_ascii = to_circuit(ascii_born, name="a")
    from_binary = to_circuit(binary_born, name="b")
    assert structural_fingerprint(from_ascii) \
        == structural_fingerprint(from_binary)


@settings(max_examples=30, deadline=None)
@given(seeds)
def test_format_chain_preserves_interface_and_state(seed):
    circuit = generate_benchmark("rt{}".format(seed), n_regs=4, n_inputs=2,
                                 n_outputs=2, seed=seed)
    _, _, binary_born = _chain(circuit)
    back = to_circuit(binary_born, name=circuit.name)
    assert sorted(back.inputs) == sorted(circuit.inputs)
    assert len(back.outputs) == len(circuit.outputs)
    assert len(back.registers) == len(circuit.registers)
    # Initial values ride the AIGER reset fields, keyed by register name.
    original_inits = {name: reg.init
                      for name, reg in circuit.registers.items()}
    assert {name: reg.init for name, reg in back.registers.items()} \
        == original_inits


@settings(max_examples=30, deadline=None)
@given(seeds)
def test_both_writers_are_fixed_points_on_random_circuits(seed):
    circuit = generate_benchmark("rt{}".format(seed), n_regs=4, seed=seed)
    aig, _ = from_circuit(circuit)
    text = dumps_aiger_ascii(aig)
    assert dumps_aiger_ascii(loads_aiger(text)) == text
    blob = dumps_aiger_binary(aig)
    assert dumps_aiger_binary(loads_aiger(blob)) == blob
