"""AIGER reader/writer: reference files, fixed points, error handling."""

import pytest

from repro.errors import ParseError
from repro.interop import (
    aiger_header_stats,
    dump_aiger,
    dumps_aiger_ascii,
    dumps_aiger_binary,
    load_aiger,
    loads_aiger,
    read_aiger_circuit,
    reencode,
    write_aiger_circuit,
)
from repro.interop.fingerprint import aig_fingerprint
from repro.netlist import bench
from repro.netlist.aig import Aig, from_circuit, to_circuit

# The AIGER documentation's toggle flip-flop with enable and reset:
# latch q toggles under en, clears under rst; outputs are q and !q.
TOGGLE_AAG = """aag 7 2 1 2 4
2
4
6 8 1
6
7
8 4 7
10 13 15
12 2 6
14 3 7
i0 en
i1 rst
l0 q
o0 out
o1 nout
c
toggle with enable and reset
"""

BENCH_TEXT = """INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
r = DFF(nx)
nx = XOR(a, r)
y = OR(nx, b)
z = AND(r, b)
"""


def toggle_aig():
    return loads_aiger(TOGGLE_AAG)


def bench_aig():
    aig, _ = from_circuit(bench.loads(BENCH_TEXT, name="t"))
    return aig


def test_reference_ascii_parses_structure_and_symbols():
    aig = toggle_aig()
    assert len(aig.inputs) == 2
    assert len(aig.latches) == 1
    assert len(aig.outputs) == 2
    assert len(aig.ands) == 4
    var, next_lit, init = aig.latches[0]
    assert next_lit == 8 and init is True
    assert aig.names[aig.inputs[0]] == "en"
    assert aig.names[aig.inputs[1]] == "rst"
    assert aig.names[var] == "q"
    assert aig.output_names == {0: "out", 1: "nout"}
    assert aig.comments == ["toggle with enable and reset"]


def test_ascii_write_read_write_is_a_fixed_point():
    text = dumps_aiger_ascii(toggle_aig())
    again = dumps_aiger_ascii(loads_aiger(text))
    assert text == again


def test_binary_write_read_write_is_a_fixed_point():
    blob = dumps_aiger_binary(toggle_aig())
    assert blob.startswith(b"aig ")
    again = dumps_aiger_binary(loads_aiger(blob))
    assert blob == again


def test_ascii_and_binary_encode_the_same_circuit():
    aig = toggle_aig()
    from_ascii = loads_aiger(dumps_aiger_ascii(aig))
    from_binary = loads_aiger(dumps_aiger_binary(aig))
    assert aig_fingerprint(from_ascii) == aig_fingerprint(from_binary)
    # Symbols and comments survive both variants.
    assert from_binary.names == from_ascii.names
    assert from_binary.output_names == from_ascii.output_names
    assert from_binary.comments == from_ascii.comments


def test_reencode_produces_canonical_numbering():
    aig = reencode(bench_aig())
    n_in, n_latch = len(aig.inputs), len(aig.latches)
    assert aig.inputs == list(range(1, n_in + 1))
    assert [entry[0] for entry in aig.latches] == list(
        range(n_in + 1, n_in + n_latch + 1))
    for var, (rhs0, rhs1) in aig.ands.items():
        assert 2 * var > rhs0 >= rhs1  # binary-format invariant
    # Idempotent and structure-preserving.
    again = reencode(aig)
    assert again.ands == aig.ands
    assert aig_fingerprint(again) == aig_fingerprint(aig)


def test_header_stats_count_the_canonical_encoding():
    stats = aiger_header_stats(reencode(bench_aig()))
    assert stats["I"] == 2 and stats["L"] == 1 and stats["O"] == 2
    assert stats["M"] == stats["I"] + stats["L"] + stats["A"]


def test_multibyte_varint_deltas_round_trip():
    # An AND at a high index referencing variable 1 forces delta0 >= 128,
    # exercising the multi-byte LEB128 path in both directions.
    aig = Aig()
    first = aig.add_input()
    second = aig.add_input()
    for _ in range(120):
        aig.add_input()
    aig.add_output(aig.and2(first, second))
    blob = dumps_aiger_binary(aig)
    assert dumps_aiger_binary(loads_aiger(blob)) == blob


def test_latch_reset_values_round_trip(tmp_path):
    circuit = bench.loads(BENCH_TEXT, name="t")
    circuit.registers["r"].init = True
    aig, _ = from_circuit(circuit)
    for suffix in ("aag", "aig"):
        path = tmp_path / ("t." + suffix)
        dump_aiger(aig, path)
        assert load_aiger(path).latches[0][2] is True


def test_uninitialized_latch_is_rejected_with_reason():
    bad = "aag 1 0 1 0 0\n2 2 2\n"
    with pytest.raises(ParseError, match="uninitialized latch"):
        loads_aiger(bad)


def test_nonzero_extension_header_fields_are_rejected():
    with pytest.raises(ParseError, match="extension"):
        loads_aiger("aag 1 1 0 0 0 1\n2\n")
    # All-zero extended fields (an AIGER 1.9 header) are fine.
    assert len(loads_aiger("aag 1 1 0 1 0 0 0\n2\n2\n").outputs) == 1


@pytest.mark.parametrize("text,message", [
    ("", "not an AIGER"),
    ("bench 1 1", "not an AIGER"),
    ("aag 1", "M I L O A"),
    ("aag x 0 0 0 0\n", "non-numeric"),
    ("aag 0 1 0 0 0\n2\n", "inconsistent"),
    ("aag 2 2 0 0 0\n2\n", "truncated"),
    ("aag 1 1 0 1 0\n2\n9\n", "out of range"),
    ("aag 1 1 0 0 0\n3\n", "positive and even"),
    ("aag 2 2 0 0 0\n2\n2\n", "defined twice"),
    ("aag 2 1 0 1 1\n2\n4\n4 2 9\n", "out of range"),
    ("aag 1 1 0 0 0\n2\nq9 name\n", "symbol"),
    ("aag 1 1 0 0 0\n2\ni7 name\n", "missing entry"),
])
def test_malformed_ascii_inputs_raise_parse_errors(text, message):
    with pytest.raises(ParseError, match=message):
        loads_aiger(text)


def test_truncated_binary_and_section_raises():
    blob = dumps_aiger_binary(bench_aig(), symbols=False, comments=False)
    with pytest.raises(ParseError, match="truncated"):
        loads_aiger(blob[:-1])


def test_circuit_entry_points_preserve_names_and_function(tmp_path):
    circuit = bench.loads(BENCH_TEXT, name="pair")
    path = tmp_path / "pair.aig"
    write_aiger_circuit(circuit, path)
    back = read_aiger_circuit(path)
    assert back.inputs == circuit.inputs
    assert sorted(back.registers) == sorted(circuit.registers)
    assert aig_fingerprint(back) == aig_fingerprint(circuit)


def test_to_circuit_round_trip_keeps_aig_fingerprint():
    aig = toggle_aig()
    assert aig_fingerprint(to_circuit(aig)) == aig_fingerprint(aig)
