"""Extension dispatch, format_info, and the CLI surfaces built on them."""

import pytest

from repro.cli import main
from repro.errors import ParseError
from repro.interop import (
    SUPPORTED_EXTENSIONS,
    detect_format,
    format_info,
    load_circuit,
    save_circuit,
)
from repro.interop.fingerprint import aig_fingerprint
from repro.netlist import bench
from repro.netlist.product import build_product
from repro.reach.traversal import check_equivalence_traversal

BENCH_TEXT = """INPUT(a)
INPUT(b)
OUTPUT(y)
r = DFF(nx)
nx = XOR(a, r)
y = OR(nx, b)
"""


@pytest.fixture
def circuit():
    return bench.loads(BENCH_TEXT, name="fmt")


def test_detect_format_covers_all_supported_extensions(tmp_path):
    expected = {".bench": "bench", ".blif": "blif",
                ".aag": "aiger-ascii", ".aig": "aiger-binary"}
    assert SUPPORTED_EXTENSIONS == expected
    for ext, fmt in expected.items():
        assert detect_format(tmp_path / ("x" + ext)) == fmt
    assert detect_format("UPPER.AAG") == "aiger-ascii"


def test_detect_format_names_the_supported_extensions():
    with pytest.raises(ParseError) as exc:
        detect_format("design.v")
    message = str(exc.value)
    assert "'.v'" in message
    for ext in SUPPORTED_EXTENSIONS:
        assert ext in message


@pytest.mark.parametrize("ext", sorted(SUPPORTED_EXTENSIONS))
def test_save_load_round_trip_is_function_preserving(tmp_path, circuit, ext):
    path = tmp_path / ("fmt" + ext)
    assert save_circuit(circuit, path) == SUPPORTED_EXTENSIONS[ext]
    back = load_circuit(path)
    assert sorted(back.inputs) == sorted(circuit.inputs)
    assert len(back.registers) == len(circuit.registers)
    if ext == ".blif":
        # BLIF lowers gates to SOP covers, so structure may change; the
        # function must not.  Bench and AIGER round-trips are structural.
        product = build_product(circuit, back, match_inputs="name",
                                match_outputs="order")
        assert check_equivalence_traversal(product).proved
    else:
        assert aig_fingerprint(back) == aig_fingerprint(circuit)


def test_format_info_reports_canonical_header_stats(tmp_path, circuit):
    path = tmp_path / "fmt.aag"
    save_circuit(circuit, path)
    info = format_info(path)
    assert info["format"] == "aiger-ascii"
    header = info["aiger"]
    assert header["I"] == 2 and header["L"] == 1 and header["O"] == 1
    assert header["M"] == header["I"] + header["L"] + header["A"]
    # The header describes the circuit, not the container: identical for
    # the same design saved as .bench.
    bench_path = tmp_path / "fmt.bench"
    save_circuit(circuit, bench_path)
    assert format_info(bench_path)["aiger"] == header


def test_cli_info_prints_format_and_aiger_line(tmp_path, circuit, capsys):
    path = tmp_path / "fmt.aig"
    save_circuit(circuit, path)
    assert main(["info", str(path)]) == 0
    out = capsys.readouterr().out
    assert "format: aiger-binary" in out
    assert "aiger: M=" in out and "L=1" in out


def test_cli_info_rejects_unknown_extension(tmp_path, capsys):
    path = tmp_path / "fmt.v"
    path.write_text("module m; endmodule\n")
    assert main(["info", str(path)]) == 2
    err = capsys.readouterr().err
    assert "unsupported circuit file extension" in err


def test_cli_verify_rejects_unknown_extension(tmp_path, capsys):
    path = tmp_path / "fmt.v"
    path.write_text("module m; endmodule\n")
    with pytest.raises(SystemExit) as exc:
        main(["verify", str(path), str(path)])
    assert exc.value.code == 2
    assert "unsupported circuit file extension" in capsys.readouterr().err
