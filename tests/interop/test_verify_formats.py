"""Acceptance: AIGER-born circuits are verdict-identical to ``.bench``.

The interop layer's whole promise is that the container format never
changes a verdict: ``repro-sec verify a.aig b.aag`` must decide exactly
what the same pair decides as ``.bench`` — per engine, with the FRAIG
preprocessor, and through the daemon (whose wire format is bench text).
"""

import json

import pytest

from repro.circuits.generators import generate_benchmark
from repro.cli import main
from repro.interop import load_circuit, save_circuit
from repro.transform import inject_distinguishable_fault, retime

ENGINES = ("van_eijk", "sat_sweep", "bmc", "traversal")


def _pairs():
    spec = generate_benchmark("vf_spec", n_regs=4, n_inputs=3, n_outputs=2,
                              seed=11)
    equivalent = retime(spec, moves=2, seed=3)
    faulty, _ = inject_distinguishable_fault(spec, seed=5)
    return spec, equivalent, faulty


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    """Each circuit of both pairs, saved under every extension."""
    root = tmp_path_factory.mktemp("verify_formats")
    spec, equivalent, faulty = _pairs()
    paths = {}
    for label, circuit in (("spec", spec), ("eq", equivalent),
                           ("neq", faulty)):
        for ext in (".bench", ".aag", ".aig"):
            path = root / (label + ext)
            save_circuit(circuit, path)
            paths[(label, ext)] = str(path)
    return paths


def _verdict(spec_path, impl_path, *extra, capsys):
    code = main(["verify", spec_path, impl_path, "--json",
                 "--max-depth", "16", *extra])
    payload = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
    return code, payload["equivalent"]


@pytest.mark.parametrize("method", ENGINES)
def test_every_engine_is_format_blind(saved, method, capsys):
    for label, expected in (("eq", True), ("neq", False)):
        baseline = _verdict(saved[("spec", ".bench")],
                            saved[(label, ".bench")],
                            "--method", method, capsys=capsys)
        mixed = _verdict(saved[("spec", ".aig")], saved[(label, ".aag")],
                         "--method", method, capsys=capsys)
        assert mixed == baseline
        # Inconclusive engines (e.g. BMC on an equivalent pair) must be
        # inconclusive in every format too — that is what == checks; a
        # conclusive verdict must additionally be the constructed truth.
        code, verdict = baseline
        if verdict is not None:
            assert verdict is expected


def test_fraig_preprocessing_is_format_blind(saved, capsys):
    for label in ("eq", "neq"):
        baseline = _verdict(saved[("spec", ".bench")],
                            saved[(label, ".bench")],
                            "--method", "sat_sweep", "--preprocess", "fraig",
                            capsys=capsys)
        mixed = _verdict(saved[("spec", ".aag")], saved[(label, ".aig")],
                         "--method", "sat_sweep", "--preprocess", "fraig",
                         capsys=capsys)
        assert mixed == baseline


def test_daemon_path_accepts_aiger_born_circuits(saved, tmp_path):
    # Circuits cross the wire as bench text, so an AIGER-born circuit must
    # flow through the daemon unchanged and return the same verdict.
    from repro.client import ServerClient

    from ..server.helpers import ServerThread

    spec = load_circuit(saved[("spec", ".aig")])
    equivalent = load_circuit(saved[("eq", ".aag")])
    faulty = load_circuit(saved[("neq", ".aig")])
    with ServerThread(store_dir=tmp_path, workers=1) as server:
        client = ServerClient(server.url(), timeout=10.0)
        eq_id = client.submit(spec, equivalent, name="eq", method="van_eijk")
        neq_id = client.submit(spec, faulty, name="neq", method="bmc",
                               options={"max_depth": 16})
        eq_result = client.result(eq_id, poll=0.05, timeout=120)
        neq_result = client.result(neq_id, poll=0.05, timeout=120)
    assert eq_result.result.equivalent is True
    assert neq_result.result.equivalent is False
