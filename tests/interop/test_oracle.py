"""External oracle shelling: stub binaries, verdict parsing, fuzz wiring.

abc/yosys are not assumed to be installed anywhere these tests run; every
"tool" here is a generated ``#!/bin/sh`` stub pointed at via the
``REPRO_SEC_ABC`` / ``REPRO_SEC_YOSYS`` environment overrides.
"""

import os
import stat

import pytest

from repro.fuzz.harness import (
    EXTERNAL_DISAGREEMENT,
    DifferentialFuzzer,
    FuzzFinding,
)
from repro.interop.oracle import (
    ExternalOracle,
    OracleVerdict,
    cross_check,
    find_tool,
)
from repro.netlist import bench
from repro.service import EventBus
from repro.service import events as ev

BENCH_TEXT = """INPUT(a)
OUTPUT(y)
r = DFF(a)
y = AND(r, a)
"""


def _stub(tmp_path, name, body):
    """Write an executable shell stub and return its path.

    The tests hide the host PATH from ``find_tool``, so the stub restores
    a standard one for its own use of coreutils.
    """
    path = tmp_path / name
    path.write_text("#!/bin/sh\nPATH=/usr/bin:/bin\n" + body + "\n")
    path.chmod(path.stat().st_mode | stat.S_IXUSR)
    return str(path)


@pytest.fixture
def pair():
    return (bench.loads(BENCH_TEXT, name="spec"),
            bench.loads(BENCH_TEXT, name="impl"))


@pytest.fixture
def no_real_tools(monkeypatch):
    monkeypatch.delenv("REPRO_SEC_ABC", raising=False)
    monkeypatch.delenv("REPRO_SEC_YOSYS", raising=False)
    # Keep the test honest on machines that do have the tools installed.
    monkeypatch.setenv("PATH", "/nonexistent")
    return monkeypatch


def test_find_tool_prefers_env_override(tmp_path, no_real_tools):
    stub = _stub(tmp_path, "abc", "echo hi")
    no_real_tools.setenv("REPRO_SEC_ABC", stub)
    assert find_tool("abc") == stub
    # A dangling override means the tool is unavailable, not an error.
    no_real_tools.setenv("REPRO_SEC_ABC", str(tmp_path / "gone"))
    assert find_tool("abc") is None


def test_missing_tools_give_skip_reason_never_failure(no_real_tools, pair):
    oracle = ExternalOracle()
    assert oracle.available == []
    reason = oracle.skip_reason()
    assert "abc not found" in reason and "yosys not found" in reason
    assert "$REPRO_SEC_ABC" in reason
    # check() still answers, with one inconclusive verdict per tool.
    verdicts = oracle.check(*pair)
    assert [v.tool for v in verdicts] == ["abc", "yosys"]
    assert all(v.verdict is None for v in verdicts)


def test_unknown_tool_name_is_rejected():
    with pytest.raises(ValueError, match="unknown oracle tool"):
        ExternalOracle(tools=["espresso"])


@pytest.mark.parametrize("body,verdict", [
    ('echo "Networks are equivalent after 1 iterations."', True),
    ('echo "Networks are NOT equivalent."', False),
    ('echo "Networks differ in output 0."', False),
    ('echo "something inscrutable"', None),
    ('exit 3', None),
])
def test_abc_stub_verdict_parsing(tmp_path, no_real_tools, pair,
                                  body, verdict):
    no_real_tools.setenv("REPRO_SEC_ABC", _stub(tmp_path, "abc", body))
    oracle = ExternalOracle(tools=["abc"])
    (result,) = oracle.check(*pair)
    assert result.tool == "abc"
    assert result.verdict is verdict
    assert result.reason
    if verdict is not None:
        # The pair has registers, so the sequential command is selected.
        assert "dsec" in result.reason


def test_abc_stub_sees_binary_aiger_files(tmp_path, no_real_tools, pair):
    # abc is invoked as ``abc -c "dsec <spec> <impl>"`` — the command is one
    # argument; the stub splits it and echoes the spec file's magic bytes
    # back, proving the binary AIGER inputs were really written.
    body = ('cmd="$2"; set -- $cmd; head -c 3 "$2"; echo; '
            'echo "Networks are equivalent"')
    no_real_tools.setenv("REPRO_SEC_ABC", _stub(tmp_path, "abc", body))
    oracle = ExternalOracle(tools=["abc"])
    (result,) = oracle.check(*pair)
    assert result.verdict is True
    assert result.output.startswith("aig")


def test_abc_timeout_is_inconclusive(tmp_path, no_real_tools, pair):
    no_real_tools.setenv("REPRO_SEC_ABC",
                         _stub(tmp_path, "abc", "sleep 10"))
    oracle = ExternalOracle(tools=["abc"], timeout=0.2)
    (result,) = oracle.check(*pair)
    assert result.verdict is None
    assert "timeout" in result.reason


def test_yosys_only_proven_counts_as_equivalent(tmp_path, no_real_tools,
                                                pair):
    proven = _stub(tmp_path, "yosys",
                   'echo "Equivalence successfully proven!"')
    unproven = _stub(tmp_path, "yosys2",
                     'echo "Found 3 unproven $equiv cells."')
    no_real_tools.setenv("REPRO_SEC_YOSYS", proven)
    (result,) = ExternalOracle(tools=["yosys"]).check(*pair)
    assert result.verdict is True
    no_real_tools.setenv("REPRO_SEC_YOSYS", unproven)
    (result,) = ExternalOracle(tools=["yosys"]).check(*pair)
    # Failed induction is inconclusive — never a refutation.
    assert result.verdict is None
    assert "unproven" in result.reason


def test_oracle_verdict_agreement_logic():
    assert OracleVerdict("abc", True, "r").agrees_with(True) is True
    assert OracleVerdict("abc", True, "r").agrees_with(False) is False
    assert OracleVerdict("abc", None, "r").agrees_with(True) is None


def test_cross_check_classifies_agreements_and_disagreements(
        tmp_path, no_real_tools, pair):
    no_real_tools.setenv(
        "REPRO_SEC_ABC",
        _stub(tmp_path, "abc", 'echo "Networks are equivalent"'))
    no_real_tools.setenv(
        "REPRO_SEC_YOSYS",
        _stub(tmp_path, "yosys", 'echo "Equivalence successfully proven!"'))
    agree = cross_check(pair[0], pair[1], equivalent=True)
    assert agree["ran"] and agree["skipped_reason"] is None
    assert agree["agreements"] == ["abc", "yosys"]
    assert agree["disagreements"] == []
    disagree = cross_check(pair[0], pair[1], equivalent=False)
    assert disagree["disagreements"] == ["abc", "yosys"]


def test_cross_check_skips_cleanly_without_tools(no_real_tools, pair):
    result = cross_check(pair[0], pair[1], equivalent=True)
    assert result["ran"] is False
    assert "not found" in result["skipped_reason"]
    assert result["agreements"] == [] and result["disagreements"] == []


class FakeOracle:
    """ExternalOracle stand-in with a scripted verdict."""

    def __init__(self, verdict):
        self.verdict = verdict
        self.binaries = {"abc": "/stub/abc"}
        self.missing = {}
        self.calls = 0

    def skip_reason(self):
        return None

    def check(self, spec, impl):
        self.calls += 1
        return [OracleVerdict("abc", self.verdict, "scripted")]


FAST_ENGINES = (("bmc", {"max_depth": 6}),)


def test_fuzzer_demotes_external_disagreement_to_finding(tmp_path):
    oracle = FakeOracle(verdict=False)  # tool insists "inequivalent"
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    fuzzer = DifferentialFuzzer(
        seed=5, engines=FAST_ENGINES, workers=0,
        corpus_dir=str(tmp_path), bus=bus,
        fault_probability=0.0,  # every pair is equivalent by construction
        oracle=oracle)
    report = fuzzer.run(iterations=1)
    assert oracle.calls >= 1
    kinds = {finding.kind for finding in report.findings}
    assert kinds == {EXTERNAL_DISAGREEMENT}
    finding = report.findings[0]
    assert finding.methods == ["abc"]
    assert finding.detail["ours"] is True
    # The disagreement survived shrinking and reached the corpus.
    assert report.corpus_paths
    types = [event.type for event in seen]
    assert ev.FUZZ_CROSS_CHECK in types
    assert ev.FUZZ_CROSS_CHECK_SKIPPED not in types


def test_fuzzer_agreeing_oracle_stays_clean(tmp_path):
    oracle = FakeOracle(verdict=True)
    fuzzer = DifferentialFuzzer(
        seed=5, engines=FAST_ENGINES, workers=0, corpus_dir=str(tmp_path),
        fault_probability=0.0, oracle=oracle)
    report = fuzzer.run(iterations=1)
    assert oracle.calls >= 1
    assert report.clean


def test_check_recipe_reproduces_external_findings():
    oracle = FakeOracle(verdict=False)
    fuzzer = DifferentialFuzzer(engines=FAST_ENGINES, workers=0,
                                fault_probability=0.0, oracle=oracle)
    recipe = {"base": {"name": "xc", "n_regs": 4, "seed": 9},
              "transforms": []}
    with_oracle = fuzzer.check_recipe(recipe, cross_check=True)
    assert [f.kind for f in with_oracle] == [EXTERNAL_DISAGREEMENT]
    # Without the flag the same recipe is clean: the shrinker only pays
    # for external re-checks when the original finding was external.
    assert fuzzer.check_recipe(recipe, cross_check=False) == []


def test_fuzz_run_without_tools_logs_skip(tmp_path, no_real_tools):
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    fuzzer = DifferentialFuzzer(
        seed=3, engines=FAST_ENGINES, workers=0, corpus_dir=str(tmp_path),
        fault_probability=0.0, cross_check=True, bus=bus)
    report = fuzzer.run(iterations=1)
    assert report.clean
    skipped = [e for e in seen if e.type == ev.FUZZ_CROSS_CHECK_SKIPPED]
    assert len(skipped) == 1
    assert "not found" in skipped[0].data["reason"]
