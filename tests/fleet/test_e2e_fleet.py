"""End-to-end fleet failure injection: real daemons, real SIGKILL.

The acceptance scenario from the fleet design: a coordinator fronting
two worker subprocesses takes a batch, one worker is SIGKILLed while it
is mid-solve, and the fleet must (a) requeue the orphaned job to the
survivor, (b) keep the watching client's SSE stream alive across the
failover on the same connection, (c) finish every job with verdicts
identical to a single-daemon run of the same batch, and (d) leave no
orphaned processes behind.
"""

import threading

import pytest

from repro.client import ServerClient

from .helpers import (
    FleetDaemon,
    comparable_result,
    delay_payload,
    wait_state,
    wait_until,
)


@pytest.fixture
def daemon_factory(tmp_path):
    daemons = []

    def start(tag, role, **kwargs):
        daemon = FleetDaemon(str(tmp_path), tag, role, **kwargs)
        daemons.append(daemon)
        return daemon

    try:
        yield start
    finally:
        for daemon in daemons:
            daemon.cleanup()


def batch_payloads():
    """The test batch: one long kill-target job plus quick fillers.

    All three use the delayed pair (verdict *inequivalent* at an exact,
    engine-deterministic counterexample depth), with distinct delays so
    each has its own cache fingerprint and routing key.
    """
    return [
        delay_payload(name="victim", delay=800),
        delay_payload(name="quick-a", delay=20),
        delay_payload(name="quick-b", delay=30),
    ]


def watch_events(client, job_id, sink, done):
    """Collect one job's SSE event types until the terminal frame."""
    try:
        for event in client.events(job_id, timeout=120):
            sink.append(event.get("type"))
            if event.get("type") == "done":
                sink.append(event["record"])
                break
    finally:
        done.set()


def test_fleet_survives_worker_sigkill(daemon_factory):
    coordinator = daemon_factory("coord", "coordinator",
                                 heartbeat=0.25, dead_after=1.5)
    workers = {
        "w1": daemon_factory("w1", "worker", join_url=coordinator.url),
        "w2": daemon_factory("w2", "worker", join_url=coordinator.url),
    }
    client = ServerClient(coordinator.url, timeout=30.0)
    wait_until(lambda: client.healthz()["nodes"]["alive"] == 2,
               message="both workers to join the fleet")

    payloads = batch_payloads()
    ids = client.submit_payloads(payloads)
    victim_job = ids[0]

    # A client starts watching the long job through the coordinator
    # before anything fails; its SSE connection must survive the kill.
    seen = []
    stream_done = threading.Event()
    watcher = threading.Thread(
        target=watch_events, args=(client, victim_job, seen, stream_done),
        daemon=True)
    watcher.start()

    # Wait for the long job to be mid-solve somewhere, then SIGKILL
    # that worker — no graceful teardown, the crash case.
    record = wait_state(client, victim_job, "running", timeout=60)
    victim_node = wait_until(
        lambda: client.job(victim_job).get("node"),
        message="the running job to report its node")
    assert client.job(victim_job)["state"] == "running"
    workers[victim_node].sigkill()
    survivor_node = [tag for tag in workers if tag != victim_node][0]

    # The orphaned job is requeued and finished by the survivor with
    # an incremented requeue count and the same inequivalence verdict.
    record = wait_state(client, victim_job, "done", timeout=120)
    assert record["requeues"] >= 1
    assert record["node"] == survivor_node
    assert record["result"]["result"]["equivalent"] is False

    # The forked engine workers of the killed daemon notice the
    # reparenting and exit on their own: the whole group is gone.
    workers[victim_node].await_group_exit()

    # The watcher's single SSE connection saw the failover happen:
    # requeue, re-dispatch, and the terminal frame, in that order.
    assert stream_done.wait(120), "SSE watcher never saw the terminal frame"
    watcher.join(timeout=10)
    types = seen[:-1]
    final_record = seen[-1]
    assert "job_requeued" in types
    assert "job_dispatched" in types
    assert types.index("job_requeued") < len(types) - 1 - types[::-1].index(
        "job_dispatched"), "no re-dispatch after the requeue"
    assert types[-1] == "done"
    assert final_record["state"] == "done"
    assert final_record["node"] == survivor_node

    # The fillers finished too (on whichever nodes they were sharded).
    fleet_results = {}
    for payload, job_id in zip(payloads, ids):
        record = wait_state(client, job_id, "done", timeout=120)
        fleet_results[payload["name"]] = comparable_result(record)

    # Verdict identity: the same batch against a plain single daemon
    # produces byte-identical results (modulo wall-clock).
    single = daemon_factory("single", "standalone")
    single_client = ServerClient(single.url, timeout=30.0)
    for payload, job_id in zip(payloads,
                               single_client.submit_payloads(payloads)):
        record = wait_state(single_client, job_id, "done", timeout=120)
        assert comparable_result(record) == fleet_results[payload["name"]], (
            "fleet and single-daemon verdicts differ for "
            + payload["name"])

    # Graceful shutdown of everything still alive; nothing orphaned.
    stats = client.stats()
    assert stats["jobs"]["done"] == 3
    assert stats["nodes"]["alive"] == 1
    assert stats["requeues"] >= 1
    assert single.sigterm() == 0
    assert workers[survivor_node].sigterm() == 0
    assert coordinator.sigterm() == 0
    for daemon in [single, workers[survivor_node], coordinator]:
        daemon.await_group_exit()


def test_killed_worker_rejoins_and_receives_work(daemon_factory):
    """Death is not forever: a worker restarted under the same node id
    rejoins the fleet and is dispatched to again (pinning proves it)."""
    coordinator = daemon_factory("coord", "coordinator",
                                 heartbeat=0.25, dead_after=1.0)
    worker = daemon_factory("w1", "worker", join_url=coordinator.url)
    client = ServerClient(coordinator.url, timeout=30.0)
    wait_until(lambda: client.healthz()["nodes"]["alive"] == 1,
               message="worker to join")

    worker.sigkill()
    worker.await_group_exit()
    wait_until(lambda: client.healthz()["nodes"]["alive"] == 0,
               message="coordinator to notice the death")

    # Same node id, fresh process: a rejoin, not a new identity.
    reborn = daemon_factory("w1b", "worker", join_url=coordinator.url,
                            extra_args=("--node-id", "w1"))
    wait_until(lambda: client.healthz()["nodes"]["alive"] == 1,
               message="worker to rejoin")

    payload = dict(delay_payload(name="after-rejoin", delay=20),
                   pin_node="w1")
    record = wait_state(client, client.submit_payload(payload), "done",
                        timeout=60)
    assert record["node"] == "w1"
    assert record["result"]["result"]["equivalent"] is False

    nodes = {node["id"]: node
             for node in client.stats()["nodes"]["detail"]}
    assert nodes["w1"]["joins"] >= 2

    assert reborn.sigterm() == 0
    assert coordinator.sigterm() == 0
    reborn.await_group_exit()
    coordinator.await_group_exit()
