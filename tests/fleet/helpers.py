"""Shared fixtures for the fleet tests.

Two deployment styles, matching the two test tiers:

* :class:`LoopThread` runs a :class:`~repro.fleet.CoordinatorServer` or
  :class:`~repro.server.VerifyServer` in-process on a background event
  loop (the :class:`tests.server.helpers.ServerThread` pattern), for
  fast unit/integration tests that need to reach into server state.
* :class:`FleetDaemon` runs a real ``repro-sec serve`` subprocess in its
  own process group — coordinator (``--coordinator``) or worker
  (``--join``) — for the end-to-end failure-injection tests where a
  node must die by actual SIGKILL.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
SRC_DIR = os.path.join(REPO_ROOT, "src")

#: Fields of a serialized SecResult that legitimately vary between runs
#: of the same problem; everything else must be byte-identical across
#: nodes for the fleet's verdict-identity guarantee.
VOLATILE_RESULT_FIELDS = ("seconds",)


def delay_payload(name="delayed", delay=500, width=8, extra_depth=50):
    """A finite, deterministically long-running BMC job.

    ``delay_line_pair`` refutes at a known depth, so the job always
    terminates with verdict *inequivalent* — but only after grinding
    through ``delay`` BMC frames (delay=500 is roughly 1.5 s), leaving a
    wide window to SIGKILL the node that is running it.
    """
    from repro.circuits import delay_line_pair
    from repro.client import job_payload

    spec, impl = delay_line_pair(delay, width=width)
    return job_payload(spec, impl, name=name, method="bmc",
                       options={"max_depth": delay + extra_depth},
                       match_outputs="order")


def comparable_result(record):
    """A job record's verdict payload with volatile fields stripped.

    Two runs of the same problem — on different nodes, before and after
    a requeue, against a single daemon — must agree on this dict.
    """
    result = record.get("result")
    if result is None:
        return None
    inner = dict(result.get("result") or {})
    for field in VOLATILE_RESULT_FIELDS:
        inner.pop(field, None)
    return inner


def wait_until(predicate, timeout=30.0, poll=0.05, message="condition"):
    """Poll ``predicate`` until truthy; returns its final value."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll)
    raise AssertionError("timed out waiting for " + message)


def wait_state(client, job_id, states, timeout=60.0, poll=0.05):
    """Wait for the job to reach one of ``states``; returns the record."""
    if isinstance(states, str):
        states = (states,)
    record = {}

    def check():
        record.update(client.job(job_id))
        return record["state"] in states

    wait_until(check, timeout=timeout, poll=poll,
               message="job {} to reach {} (last: {!r})".format(
                   job_id, states, record.get("state")))
    return dict(record)


class LoopThread:
    """Context manager: any ``start()/stop()`` server on its own loop."""

    def __init__(self, server):
        self.server = server
        self.loop = None
        self.thread = None

    def __enter__(self):
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, name="fleet-loop",
                                       daemon=True)
        self.thread.start()
        assert started.wait(10), "server failed to start"
        return self.server

    def __exit__(self, *exc_info):
        future = asyncio.run_coroutine_threadsafe(self.server.stop(),
                                                  self.loop)
        future.result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()
        return False


class FleetDaemon:
    """One ``repro-sec serve`` subprocess in its own process group.

    ``role`` is ``"coordinator"``, ``"worker"`` (needs ``join_url``) or
    ``"standalone"`` — a plain single daemon, used as the baseline for
    verdict-identity checks.  Every daemon gets its own store/cache
    directories so
    fleet members never share disk state (only the coordinator's HTTP
    cache is shared, which is the point).
    """

    def __init__(self, base_dir, tag, role, join_url=None, workers=2,
                 heartbeat=0.25, dead_after=1.5, extra_args=()):
        self.tag = tag
        self.role = role
        home = os.path.join(base_dir, tag)
        os.makedirs(home, exist_ok=True)
        self.store_dir = os.path.join(home, "store")
        self.cache_dir = os.path.join(home, "cache")
        self.ready_file = os.path.join(home, "ready.json")
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0", "--quiet",
            "--store-dir", self.store_dir,
            "--cache-dir", self.cache_dir,
            "--ready-file", self.ready_file,
            "--heartbeat", str(heartbeat),
        ]
        if role == "coordinator":
            argv += ["--coordinator", "--dead-after", str(dead_after)]
        elif role == "worker":
            assert join_url, "worker daemons need a coordinator to join"
            argv += ["--join", join_url, "--node-id", tag,
                     "--workers", str(workers)]
        else:
            assert role == "standalone", role
            argv += ["--workers", str(workers)]
        argv += list(extra_args)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            argv, env=env, cwd=home, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
        self.pgid = os.getpgid(self.proc.pid)
        self.url = self._await_ready()

    def _await_ready(self, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise AssertionError(
                    "{} daemon died during startup:\n".format(self.tag)
                    + self.proc.stderr.read().decode())
            try:
                with open(self.ready_file) as fh:
                    return json.load(fh)["url"]
            except (OSError, ValueError, KeyError):
                time.sleep(0.05)
        raise AssertionError("{} daemon never wrote its ready file".format(
            self.tag))

    def sigkill(self):
        self.proc.kill()
        self.proc.wait(timeout=10)

    def sigterm(self, timeout=30):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def group_alive(self):
        try:
            os.killpg(self.pgid, 0)
            return True
        except ProcessLookupError:
            return False

    def await_group_exit(self, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.group_alive():
                return
            time.sleep(0.1)
        raise AssertionError("{} process group did not exit "
                             "(orphaned workers?)".format(self.tag))

    def cleanup(self):
        try:
            os.killpg(self.pgid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        if self.proc.poll() is None:
            self.proc.wait(timeout=10)
        if self.proc.stderr:
            self.proc.stderr.close()
