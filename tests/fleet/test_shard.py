"""Property tests for rendezvous shard assignment (:mod:`repro.fleet.shard`).

The coordinator's failure model leans on three properties of
:func:`assign_node` — deterministic, total, minimally disruptive — so
each is pinned down as a hypothesis property over arbitrary keys and
node sets, not just examples.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.shard import assign_all, assign_node, routing_key

node_ids = st.lists(
    st.text(string.ascii_lowercase + string.digits + "-", min_size=1,
            max_size=12),
    min_size=1, max_size=8, unique=True)

keys = st.text(min_size=0, max_size=64)


@given(key=keys, nodes=node_ids)
def test_deterministic_and_order_independent(key, nodes):
    """The owner is a pure function of (key, node *set*) — list order,
    repetition and repeated evaluation must not change it."""
    owner = assign_node(key, nodes)
    assert owner == assign_node(key, list(reversed(nodes)))
    assert owner == assign_node(key, sorted(nodes))
    assert owner == assign_node(key, nodes + [nodes[0]])
    assert owner == assign_node(key, nodes)


@given(keys=st.lists(keys, min_size=1, max_size=20), nodes=node_ids)
def test_total_over_live_nodes(keys, nodes):
    """Every key gets exactly one owner, and it is a live node."""
    owners = assign_all(keys, nodes)
    assert set(owners) == set(keys)
    for owner in owners.values():
        assert owner in nodes


def test_no_live_nodes_means_no_owner():
    assert assign_node("anything", []) is None


@given(keys=st.lists(keys, min_size=1, max_size=30, unique=True),
       nodes=node_ids)
@settings(max_examples=200)
def test_node_death_is_minimally_disruptive(keys, nodes):
    """Removing one node moves ONLY the keys that node owned.

    This is the fleet's requeue bill: when a worker dies, jobs routed to
    the survivors stay exactly where they are — nothing reshuffles.
    """
    before = assign_all(keys, nodes)
    for dead in nodes:
        survivors = [node for node in nodes if node != dead]
        if not survivors:
            continue
        after = assign_all(keys, survivors)
        for key in keys:
            if before[key] == dead:
                assert after[key] in survivors
            else:
                assert after[key] == before[key], (
                    "key {!r} moved from {!r} to {!r} although {!r} "
                    "died".format(key, before[key], after[key], dead))


@given(keys=st.lists(keys, min_size=1, max_size=30, unique=True),
       nodes=node_ids,
       joiner=st.text(string.ascii_lowercase + string.digits + "-",
                      min_size=1, max_size=12))
@settings(max_examples=200)
def test_node_join_steals_only_for_itself(keys, nodes, joiner):
    """A joining node only ever *gains* keys; it never causes a key to
    move between two pre-existing nodes."""
    if joiner in nodes:
        return
    before = assign_all(keys, nodes)
    after = assign_all(keys, nodes + [joiner])
    for key in keys:
        assert after[key] in (before[key], joiner)


def test_routing_key_ignores_display_fields():
    payload = {"spec_bench": "x", "impl_bench": "y", "method": "bmc",
               "options": {"max_depth": 10}, "name": "a", "tags": {"t": 1}}
    renamed = dict(payload, name="b", tags={"t": 2})
    different = dict(payload, options={"max_depth": 11})
    assert routing_key(payload) == routing_key(renamed)
    assert routing_key(payload) != routing_key(different)
