"""Shared-cache tests: :mod:`repro.fleet.cachenet` and the fleet's
*any node serves any fingerprint* guarantee.

The headline scenario: worker A solves a pair (publishing the result to
the coordinator's cache), then the same pair is routed to worker B — B
has never seen it, but serves it from the shared cache without running
an engine, an order of magnitude faster and bit-identical.
"""

import hashlib
import os
import time

import pytest

from repro import verify
from repro.client import ServerClient
from repro.fleet import CacheClient, CoordinatorServer, TieredCache
from repro.server import VerifyServer
from repro.service.cache import ResultCache

from ..service.helpers import tiny_pair
from .helpers import LoopThread, comparable_result, delay_payload, wait_state, wait_until


def tiny_result():
    spec, impl = tiny_pair()
    return verify(spec, impl, method="bmc", max_depth=8,
                  match_outputs="order")


def hexkey(seed):
    return hashlib.sha256(seed.encode()).hexdigest()


# -- CacheClient against real coordinator cache routes ----------------------

@pytest.fixture
def coordinator(tmp_path):
    server = CoordinatorServer(
        port=0, store_dir=str(tmp_path / "cstore"),
        cache_dir=str(tmp_path / "ccache"),
        heartbeat_interval=0.25, dead_after=2.0)
    with LoopThread(server):
        yield server


def test_cache_client_roundtrip(coordinator):
    client = CacheClient(coordinator.url())
    key = hexkey("roundtrip")
    assert client.get(key) is None
    assert client.misses == 1

    result = tiny_result()
    assert client.put(key, result, meta={"node": "test"}) is True
    served = client.get(key)
    assert served is not None
    assert client.hits == 1
    assert served.as_dict() == result.as_dict()


def test_cache_client_rejects_bad_keys(coordinator):
    client = CacheClient(coordinator.url())
    # Uppercase / non-hex keys are a 400 on the wire -> error counter,
    # never an exception in the worker's job pump.
    assert client.get("NOT-A-DIGEST") is None
    assert client.errors == 1


def test_cache_client_is_lossy_when_endpoint_is_down():
    client = CacheClient("http://127.0.0.1:1", timeout=0.2)
    assert client.get(hexkey("down")) is None
    assert client.put(hexkey("down"), tiny_result()) is False
    assert client.errors == 2
    assert client.hits == 0


def test_tiered_cache_read_through_and_write_through(coordinator, tmp_path):
    remote = CacheClient(coordinator.url())
    local = ResultCache(str(tmp_path / "local"))
    tiered = TieredCache(local, remote)
    key = hexkey("tiered")
    result = tiny_result()

    # Seed only the remote tier, as if another node had solved it.
    assert remote.put(key, result)
    served = tiered.get(key)
    assert served is not None
    assert tiered.remote_hits == 1
    # Read-through: the local tier now holds a copy...
    assert local.get(key) is not None
    # ...so the next lookup never leaves the node.
    assert tiered.get(key) is not None
    assert tiered.remote_hits == 1

    # Write-through: a local put is published remotely.
    other = hexkey("tiered-other")
    assert tiered.put(other, result)
    fresh = CacheClient(coordinator.url())
    assert fresh.get(other) is not None

    stats = tiered.stats()
    assert stats["hits"] >= 2
    assert stats["remote_hits"] == 1
    assert stats["local"]["entries"] >= 2
    assert "entries" in stats and "bytes" in stats


# -- the cross-node guarantee, end to end -----------------------------------

def test_cross_node_cache_hit(tmp_path):
    """Worker A solves; worker B serves the same pair from the shared
    cache: no engine run, >=10x faster, identical result dict."""
    coordinator = CoordinatorServer(
        port=0, store_dir=str(tmp_path / "cstore"),
        cache_dir=str(tmp_path / "ccache"),
        heartbeat_interval=0.25, dead_after=3.0, poll_interval=0.02)
    with LoopThread(coordinator):
        url = coordinator.url()

        def worker(tag):
            return VerifyServer(
                port=0, workers=2, poll_interval=0.02,
                store_dir=str(tmp_path / tag / "store"),
                cache_dir=str(tmp_path / tag / "cache"),
                node_id=tag, join_url=url, heartbeat_interval=0.25,
                trusted_proxies=("127.0.0.1",), remote_cache_url=url)

        with LoopThread(worker("wa")), LoopThread(worker("wb")):
            client = ServerClient(url, timeout=30.0)
            wait_until(lambda: client.healthz()["nodes"]["alive"] == 2,
                       message="both workers to join")

            payload = delay_payload(name="cross-cache", delay=400)

            solve = dict(payload, pin_node="wa")
            started = time.monotonic()
            solved = wait_state(client, client.submit_payload(solve),
                                "done", timeout=90)
            solve_seconds = time.monotonic() - started
            assert solved["node"] == "wa"
            assert solved["cached"] is False

            cached = dict(payload, pin_node="wb")
            started = time.monotonic()
            job_id = client.submit_payload(cached)
            served = wait_state(client, job_id, "done", timeout=30)
            serve_seconds = time.monotonic() - started
            assert served["node"] == "wb"
            assert served["cached"] is True

            # Same SecResult, solved exactly once.
            assert comparable_result(served) == comparable_result(solved)
            assert served["result"]["result"]["equivalent"] is False

            # The cache hit shows up in the job's relayed event stream.
            types = [event.get("type")
                     for event in client.events(job_id, timeout=10)]
            assert "job_cached" in types

            # And it really did skip the engine: >=10x faster.
            assert serve_seconds * 10 <= solve_seconds, (
                "cache-served run took {:.3f}s vs {:.3f}s solve".format(
                    serve_seconds, solve_seconds))
