"""Per-client rate limiting behind the coordinator (X-Forwarded-For).

A worker daemon keys its rate limiter by socket peer; behind a
coordinator every request would share the coordinator's bucket and one
greedy client could starve the whole fleet.  The fix: a worker honours
``X-Forwarded-For`` — but only from peers in ``trusted_proxies`` —
and keys buckets by the forwarded identity.  These tests prove distinct
downstream clients land in distinct buckets, and that the header is
ignored when the peer is not trusted (spoofing resistance).
"""

import json
import urllib.error
import urllib.request

from repro.server import VerifyServer

from .helpers import LoopThread, wait_until


def get_stats(url, forwarded=None):
    """GET /v1/stats with an optional X-Forwarded-For; returns status."""
    headers = {}
    if forwarded is not None:
        headers["X-Forwarded-For"] = forwarded
    request = urllib.request.Request(url + "/v1/stats", headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            response.read()
            return response.status
    except urllib.error.HTTPError as exc:
        exc.read()
        return exc.code


def drain_bucket(url, forwarded, attempts=20):
    """Hammer until throttled; returns how many requests got through."""
    for number in range(attempts):
        if get_stats(url, forwarded) == 429:
            return number
    raise AssertionError("never throttled after {} requests".format(
        attempts))


def tiny_limit_server(tmp_path, trusted):
    # burst=3 with a glacial refill: the 4th request in a bucket is 429.
    return VerifyServer(
        port=0, workers=1, poll_interval=0.02,
        store_dir=str(tmp_path / "store"), cache_dir=None,
        rate=0.001, burst=3, trusted_proxies=trusted)


def test_distinct_forwarded_clients_get_distinct_buckets(tmp_path):
    server = tiny_limit_server(tmp_path, trusted=("127.0.0.1",))
    with LoopThread(server):
        url = server.url()
        assert drain_bucket(url, "10.0.0.1") == 3
        # A different downstream client arrives through the same proxy
        # socket — and gets its own untouched bucket.
        assert drain_bucket(url, "10.0.0.2") == 3
        # The first client is still throttled: the buckets are separate.
        assert get_stats(url, "10.0.0.1") == 429
        # So is the proxy's own (headerless) traffic bucket.
        assert drain_bucket(url, None) == 3
        assert server.limiter.rejected >= 3


def test_forwarded_header_ignored_from_untrusted_peer(tmp_path):
    server = tiny_limit_server(tmp_path, trusted=())
    with LoopThread(server):
        url = server.url()
        assert drain_bucket(url, "10.0.0.1") == 3
        # Untrusted peer: the spoofed header buys no fresh bucket.
        assert get_stats(url, "10.0.0.2") == 429
        assert get_stats(url, None) == 429


def test_first_hop_of_forwarded_chain_wins(tmp_path):
    server = tiny_limit_server(tmp_path, trusted=("127.0.0.1",))
    with LoopThread(server):
        url = server.url()
        # "client, proxy1, proxy2" — the originating client is the key.
        assert drain_bucket(url, "10.9.9.9, 192.168.0.1") == 3
        assert get_stats(url, "10.9.9.9") == 429


def test_forwarded_identity_recorded_on_submissions(tmp_path):
    server = VerifyServer(
        port=0, workers=1, poll_interval=0.02,
        store_dir=str(tmp_path / "store"), cache_dir=None,
        trusted_proxies=("127.0.0.1",))
    with LoopThread(server):
        from repro.client import job_payload

        from ..service.helpers import tiny_pair

        spec, impl = tiny_pair()
        body = json.dumps(job_payload(
            spec, impl, name="fwd", method="bmc",
            options={"max_depth": 4}, match_outputs="order")).encode()
        request = urllib.request.Request(
            server.url() + "/v1/jobs", data=body, method="POST",
            headers={"Content-Type": "application/json",
                     "X-Forwarded-For": "10.1.2.3"})
        with urllib.request.urlopen(request, timeout=10) as response:
            job_id = json.loads(response.read())["id"]
        wait_until(lambda: server.store.get(job_id).terminal, timeout=60,
                   message="job to finish")
        assert server.store.get(job_id).client == "10.1.2.3"
