"""Coordinator membership and dispatch tests, in-process.

Fake nodes (registered over HTTP with unreachable URLs) exercise the
membership bookkeeping and the failure paths — dispatch-failure death,
heartbeat reaping, requeue-to-survivor — without subprocess daemons;
the real-SIGKILL end-to-end version lives in ``test_e2e_fleet.py``.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.client import ServerClient, ServerError
from repro.fleet import CoordinatorServer
from repro.server import VerifyServer

from .helpers import LoopThread, delay_payload, wait_state, wait_until

#: A port nothing listens on: RFC 2544 benchmark space, connect refused.
DEAD_URL = "http://127.0.0.1:9"


def api(url, method="GET", path="/", body=None):
    """Raw request helper; returns (status, payload-dict)."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url + path, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


@pytest.fixture
def coordinator(tmp_path):
    server = CoordinatorServer(
        port=0, store_dir=str(tmp_path / "cstore"),
        cache_dir=str(tmp_path / "ccache"),
        heartbeat_interval=0.1, dead_after=0.6, poll_interval=0.02,
        dispatch_timeout=1.0)
    with LoopThread(server):
        yield server


def test_membership_lifecycle(coordinator):
    url = coordinator.url()
    status, joined = api(url, "POST", "/v1/nodes",
                         {"id": "n1", "url": DEAD_URL})
    assert status == 200
    assert joined["heartbeat_interval"] == pytest.approx(0.1)
    assert joined["dead_after"] == pytest.approx(0.6)
    assert joined["cache_url"] == url  # the shared cache lives here

    status, listing = api(url, "GET", "/v1/nodes")
    assert status == 200
    assert [node["id"] for node in listing["nodes"]] == ["n1"]
    assert listing["nodes"][0]["alive"] is True

    status, _ = api(url, "POST", "/v1/nodes/n1/heartbeat", {})
    assert status == 200
    # An unknown node heartbeating gets 404: the rejoin signal.
    status, _ = api(url, "POST", "/v1/nodes/ghost/heartbeat", {})
    assert status == 404

    status, left = api(url, "DELETE", "/v1/nodes/n1")
    assert status == 200 and left["alive"] is False
    assert coordinator.alive_nodes() == []

    # Rejoining the same id revives it and counts the join.
    api(url, "POST", "/v1/nodes", {"id": "n1", "url": DEAD_URL})
    assert coordinator.nodes["n1"].alive is True
    assert coordinator.nodes["n1"].joins == 2


def test_heartbeat_reaper_declares_silent_node_dead(coordinator):
    api(coordinator.url(), "POST", "/v1/nodes",
        {"id": "silent", "url": DEAD_URL})
    assert coordinator.nodes["silent"].alive is True
    wait_until(lambda: not coordinator.nodes["silent"].alive,
               timeout=5, message="reaper to declare the node dead")
    # A late heartbeat from the reaped node revives it as a rejoin.
    status, _ = api(coordinator.url(), "POST",
                    "/v1/nodes/silent/heartbeat", {})
    assert status == 200
    assert coordinator.nodes["silent"].alive is True
    assert coordinator.nodes["silent"].joins == 2


def test_pin_to_unknown_node_is_rejected(coordinator):
    client = ServerClient(coordinator.url(), timeout=10)
    payload = dict(delay_payload(delay=10), pin_node="nowhere")
    with pytest.raises(ServerError) as excinfo:
        client.submit_payload(payload)
    assert excinfo.value.status == 400


def test_unreachable_node_dies_on_dispatch_and_survivor_takes_over(
        coordinator, tmp_path):
    """A job dispatched to a dead-on-arrival node is requeued, the node
    is declared dead, and a live worker joining later completes it."""
    url = coordinator.url()
    api(url, "POST", "/v1/nodes", {"id": "doa", "url": DEAD_URL})
    client = ServerClient(url, timeout=30)
    job_id = client.submit_payload(delay_payload(name="takeover", delay=30))

    # The dispatch attempt kills the fake node; the job never left the
    # queue (no requeue needed — it was never placed anywhere).
    wait_until(lambda: not coordinator.nodes["doa"].alive,
               timeout=5, message="dispatch failure to kill the node")
    record = client.job(job_id)
    assert record["state"] == "queued"
    assert record["requeues"] == 0
    assert coordinator.dispatch_failures >= 1

    # A real worker joins; the queued job drains to it.
    worker = VerifyServer(
        port=0, workers=2, poll_interval=0.02,
        store_dir=str(tmp_path / "w" / "store"), cache_dir=None,
        node_id="real", join_url=url, heartbeat_interval=0.1,
        trusted_proxies=("127.0.0.1",))
    with LoopThread(worker):
        record = wait_state(client, job_id, "done", timeout=60)
        assert record["node"] == "real"
        assert record["result"]["result"]["equivalent"] is False

    stats = client.stats()
    assert stats["jobs"]["done"] == 1


def test_submissions_carry_forwarded_client_to_workers(coordinator,
                                                       tmp_path):
    """The worker sees the real client behind the coordinator, not the
    coordinator itself (the proxied submission carries X-Forwarded-For
    and the worker trusts the coordinator's peer address)."""
    url = coordinator.url()
    worker = VerifyServer(
        port=0, workers=2, poll_interval=0.02,
        store_dir=str(tmp_path / "w" / "store"), cache_dir=None,
        node_id="w", join_url=url, heartbeat_interval=0.1,
        trusted_proxies=("127.0.0.1",))
    with LoopThread(worker):
        client = ServerClient(url, timeout=30)
        wait_until(lambda: client.healthz()["nodes"]["alive"] == 1,
                   message="worker to join")
        job_id = client.submit_payload(delay_payload(name="fwd", delay=10))
        wait_state(client, job_id, "done", timeout=60)
        records = list(worker.store.all())
        assert len(records) == 1
        # Loopback tests can't fake a distinct source IP, but the worker
        # record's client must be the coordinator-forwarded identity —
        # i.e. the peer the *coordinator* saw, proving the header path
        # ran (test_xff.py proves distinct identities get distinct
        # rate-limit buckets).
        coordinator_record = coordinator.store.get(job_id)
        assert records[0].client == coordinator_record.client == "127.0.0.1"
