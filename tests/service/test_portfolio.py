"""Portfolio racing: first conclusive engine wins, losers are cancelled."""

import multiprocessing

import pytest

from repro.service import EventBus, run_portfolio
from repro.service import events as ev

from .helpers import magic_pair, tiny_pair


def _assert_no_orphans():
    """Every worker process must be joined when run_portfolio returns."""
    assert multiprocessing.active_children() == []


def test_bmc_wins_race_with_counterexample():
    spec, impl = magic_pair()
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    result = run_portfolio(spec, impl, methods=("van_eijk", "bmc"),
                           time_limit=120, bus=bus)
    _assert_no_orphans()
    assert result.refuted
    assert result.method == "bmc"
    assert result.details["portfolio"]["winner"] == "bmc"
    assert result.counterexample is not None
    # The bug triggers when all inputs are 1 in the first frame; outputs
    # (registered) differ one frame later — a depth-2 trace.
    assert result.counterexample.length == 2
    assert all(result.counterexample.inputs[0].values())
    types = [event.type for event in seen]
    assert types[0] == ev.PORTFOLIO_STARTED
    assert ev.ENGINE_WON in types
    won = next(e for e in seen if e.type == ev.ENGINE_WON)
    assert won.data["method"] == "bmc"


def test_prover_wins_race_and_falsifier_is_cancelled():
    spec, impl = tiny_pair()
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    # A falsifier lane with an effectively unbounded budget: it can never
    # prove, so it must lose the race and be cancelled.
    result = run_portfolio(
        spec, impl, methods=("van_eijk", "bmc"),
        per_method_options={"bmc": {"max_depth": 100000}},
        time_limit=120, bus=bus)
    _assert_no_orphans()
    assert result.proved
    assert result.method == "van_eijk"
    lanes = result.details["portfolio"]["lanes"]
    assert lanes["van_eijk"] == "won"
    assert lanes["bmc"] in ("cancelled", "finished")
    assert any(event.type == ev.ENGINE_CANCELLED for event in seen) or \
        lanes["bmc"] == "finished"


def test_all_lanes_inconclusive_returns_preferred_lane():
    spec, impl = magic_pair()
    # Only bounded falsifiers, both too shallow to reach the depth-2 bug?
    # No — use depth 1 so neither can refute (the mismatch needs 2 frames).
    result = run_portfolio(
        spec, impl, methods=("bmc",),
        per_method_options={"bmc": {"max_depth": 1}},
        time_limit=60)
    _assert_no_orphans()
    assert result.inconclusive
    assert result.method == "bmc"
    assert result.details["portfolio"]["winner"] is None


def test_crashed_lane_does_not_win(monkeypatch):
    from repro.service import register_method, unregister_method

    def crash(job, progress, cancel_check):
        import os

        os._exit(9)

    register_method("crash_lane", crash)
    try:
        spec, impl = tiny_pair()
        result = run_portfolio(spec, impl,
                               methods=("crash_lane", "van_eijk"),
                               time_limit=60)
    finally:
        unregister_method("crash_lane")
    _assert_no_orphans()
    assert result.proved
    assert result.details["portfolio"]["winner"] == "van_eijk"
    assert result.details["portfolio"]["lanes"]["crash_lane"] in (
        "crashed", "cancelled")


def test_bogus_refutation_is_demoted_to_lane_error():
    """A refuting lane whose trace fails replay must not win the race."""
    from repro.reach.result import CexTrace, SecResult
    from repro.service import register_method, unregister_method

    def bogus_refuter(job, progress, cancel_check):
        # tiny_pair is equivalent, so no trace can be valid: the all-zero
        # input frame keeps both outputs at 0.
        trace = CexTrace(inputs=[], final_input={"a": False, "b": False})
        return SecResult(False, "bogus_refuter", counterexample=trace)

    register_method("bogus_refuter", bogus_refuter)
    try:
        spec, impl = tiny_pair()
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        result = run_portfolio(spec, impl,
                               methods=("bogus_refuter", "van_eijk"),
                               time_limit=60, bus=bus)
    finally:
        unregister_method("bogus_refuter")
    _assert_no_orphans()
    assert result.proved
    assert result.method == "van_eijk"
    lanes = result.details["portfolio"]["lanes"]
    assert lanes["van_eijk"] == "won"
    assert lanes["bogus_refuter"] == "error"
    rejected = [e for e in seen if e.type == ev.ENGINE_CEX_REJECTED]
    assert len(rejected) == 1
    assert rejected[0].data["method"] == "bogus_refuter"


def test_bogus_refutation_is_never_returned_even_as_last_resort():
    """With no other conclusive lane, the rejected refutation still loses."""
    from repro.reach.result import CexTrace, SecResult
    from repro.service import register_method, unregister_method

    def bogus_refuter(job, progress, cancel_check):
        trace = CexTrace(inputs=[], final_input={"a": True, "b": False})
        return SecResult(False, "bogus_refuter", counterexample=trace)

    register_method("bogus_refuter", bogus_refuter)
    try:
        spec, impl = tiny_pair()
        result = run_portfolio(spec, impl, methods=("bogus_refuter",),
                               time_limit=60)
    finally:
        unregister_method("bogus_refuter")
    _assert_no_orphans()
    assert not result.refuted
    assert result.details["portfolio"]["winner"] is None
    assert result.details["portfolio"]["lanes"]["bogus_refuter"] == "error"
    assert "replay" in result.details


def test_validate_refutations_off_keeps_old_behaviour():
    from repro.reach.result import CexTrace, SecResult
    from repro.service import register_method, unregister_method

    def bogus_refuter(job, progress, cancel_check):
        trace = CexTrace(inputs=[], final_input={"a": False, "b": False})
        return SecResult(False, "bogus_refuter", counterexample=trace)

    register_method("bogus_refuter", bogus_refuter)
    try:
        spec, impl = tiny_pair()
        result = run_portfolio(spec, impl, methods=("bogus_refuter",),
                               time_limit=60, validate_refutations=False)
    finally:
        unregister_method("bogus_refuter")
    _assert_no_orphans()
    assert result.refuted
    assert result.details["portfolio"]["winner"] == "bogus_refuter"


def test_valid_refutation_carries_replay_report():
    spec, impl = magic_pair()
    result = run_portfolio(spec, impl, methods=("bmc",), time_limit=120)
    _assert_no_orphans()
    assert result.refuted
    replay = result.details["replay"]
    assert replay["valid"] is True
    assert replay["mismatch_frame"] is not None


def test_portfolio_requires_methods():
    spec, impl = tiny_pair()
    with pytest.raises(ValueError):
        run_portfolio(spec, impl, methods=())
