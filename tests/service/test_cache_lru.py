"""LRU size-cap tests for the disk result cache."""

import os
import time

from repro.service.cache import ResultCache
from repro.reach.result import SecResult


def result_for(key):
    return SecResult(equivalent=True, method="van_eijk",
                     details={"origin": key})


def put_many(cache, keys):
    for key in keys:
        cache.put(key, result_for(key))


def backdate(cache, key, seconds):
    """Shift an entry's mtime into the past (mtime is the LRU clock)."""
    path = cache._path(key)
    past = time.time() - seconds
    os.utime(path, (past, past))


def test_uncapped_cache_never_prunes(tmp_path):
    cache = ResultCache(tmp_path)
    put_many(cache, ["k{:02d}".format(i) for i in range(20)])
    assert len(cache) == 20
    assert cache.prune() == 0
    assert cache.evictions == 0


def test_max_entries_evicts_oldest(tmp_path):
    cache = ResultCache(tmp_path, max_entries=3)
    for age, key in [(300, "aa1"), (200, "bb2"), (100, "cc3")]:
        cache.put(key, result_for(key))
        backdate(cache, key, age)
    cache.put("dd4", result_for("dd4"))
    assert len(cache) == 3
    assert "aa1" not in cache  # oldest went first
    assert "dd4" in cache
    assert cache.evictions == 1


def test_get_refreshes_recency(tmp_path):
    cache = ResultCache(tmp_path, max_entries=2)
    cache.put("aa1", result_for("aa1"))
    cache.put("bb2", result_for("bb2"))
    backdate(cache, "aa1", 300)
    backdate(cache, "bb2", 200)
    assert cache.get("aa1") is not None  # touch: aa1 becomes most recent
    cache.put("cc3", result_for("cc3"))
    assert "aa1" in cache
    assert "bb2" not in cache


def test_max_bytes_cap(tmp_path):
    cache = ResultCache(tmp_path)
    put_many(cache, ["aa1", "bb2", "cc3", "dd4"])
    entry_bytes = cache.total_bytes() // 4
    cache.max_bytes = int(entry_bytes * 2.5)  # room for two entries
    cache.put("ee5", result_for("ee5"))
    assert cache.total_bytes() <= cache.max_bytes
    assert "ee5" in cache


def test_explicit_prune_arguments(tmp_path):
    cache = ResultCache(tmp_path)  # uncapped instance
    for i, key in enumerate(["aa1", "bb2", "cc3", "dd4"]):
        cache.put(key, result_for(key))
        backdate(cache, key, 400 - i * 100)
    evicted = cache.prune(max_entries=1)
    assert evicted == 3
    assert len(cache) == 1
    assert "dd4" in cache


def test_stats_reports_caps_and_evictions(tmp_path):
    cache = ResultCache(tmp_path, max_entries=1, max_bytes=10**6)
    cache.put("aa1", result_for("aa1"))
    backdate(cache, "aa1", 60)
    cache.put("bb2", result_for("bb2"))
    assert cache.get("bb2") is not None
    assert cache.get("aa1") is None  # evicted
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["evictions"] == 1
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["max_entries"] == 1
    assert stats["max_bytes"] == 10**6
    assert stats["bytes"] > 0


def test_clear_keeps_directory(tmp_path):
    cache = ResultCache(tmp_path, max_entries=10)
    put_many(cache, ["aa1", "bb2"])
    cache.clear()
    assert len(cache) == 0
    assert os.path.isdir(str(tmp_path))
    cache.put("cc3", result_for("cc3"))
    assert "cc3" in cache
