"""Structural cache keys and the disk result cache."""

import json

import pytest

from repro.netlist import structural_fingerprint
from repro.reach import CexTrace, SecResult
from repro.service import JobSpec, ResultCache
from repro.service.job import CACHE_FORMAT_VERSION

from .helpers import magic_pair, tiny_pair


# -- structural fingerprints -------------------------------------------------

def test_fingerprint_invariant_under_renaming():
    spec, _ = tiny_pair()
    renamed = spec.renamed("p_", keep_inputs=True)
    assert structural_fingerprint(spec) == structural_fingerprint(renamed)


def test_fingerprint_invariant_under_structural_duplicates():
    spec, impl = tiny_pair()  # impl is spec plus a BUF indirection
    assert structural_fingerprint(spec) == structural_fingerprint(impl)


def test_fingerprint_distinguishes_circuits():
    spec, _ = tiny_pair()
    other, _ = magic_pair(n_inputs=4)
    assert structural_fingerprint(spec) != structural_fingerprint(other)


def test_fingerprint_sensitive_to_initial_value():
    spec, _ = tiny_pair()
    flipped = spec.copy()
    flipped.registers["r"].init = True
    assert structural_fingerprint(spec) != structural_fingerprint(flipped)


# -- job specs ---------------------------------------------------------------

def test_cache_key_stable_and_method_sensitive():
    spec, impl = tiny_pair()
    a = JobSpec("a", spec, impl)
    b = JobSpec("b", spec.renamed("x_", keep_inputs=True), impl)
    assert a.cache_key() == b.cache_key()  # names don't matter, structure does
    c = JobSpec("c", spec, impl, method="traversal")
    d = JobSpec("d", spec, impl, options={"time_limit": 10})
    assert len({a.cache_key(), c.cache_key(), d.cache_key()}) == 3


def test_job_options_must_be_json_serializable():
    spec, impl = tiny_pair()
    with pytest.raises(TypeError):
        JobSpec("bad", spec, impl, options={"callback": lambda: None})


def test_job_result_dict_roundtrip():
    from repro.service import JobResult

    result = SecResult(
        equivalent=False, method="bmc", iterations=2, seconds=0.5,
        counterexample=CexTrace(inputs=[{"a": True}],
                                final_input={"a": False}),
        details={"cex_depth": 2},
    )
    job_result = JobResult("j", result, attempts=2, wall_seconds=1.0)
    clone = JobResult.from_dict(
        json.loads(json.dumps(job_result.as_dict())))
    assert clone.name == "j"
    assert clone.attempts == 2
    assert clone.result.refuted
    assert clone.result.counterexample.length == 2
    assert clone.result.counterexample.full_sequence() == [
        {"a": True}, {"a": False}]
    assert clone.result.details == {"cex_depth": 2}


# -- disk cache --------------------------------------------------------------

def test_cache_roundtrip_with_counterexample(tmp_path):
    cache = ResultCache(tmp_path)
    result = SecResult(
        equivalent=False, method="bmc", iterations=3, seconds=0.1,
        counterexample=CexTrace(inputs=[], final_input={"x": True}),
    )
    assert cache.put("ab" * 32, result)
    loaded = cache.get("ab" * 32)
    assert loaded.refuted
    assert loaded.counterexample.final_input == {"x": True}
    assert cache.stats()["entries"] == 1
    assert cache.hits == 1


def test_cache_miss_and_clear(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("cd" * 32) is None
    assert cache.misses == 1
    cache.put("cd" * 32, SecResult(True, "van_eijk"))
    assert "cd" * 32 in cache
    cache.clear()
    assert len(cache) == 0
    assert cache.get("cd" * 32) is None


def test_cache_rejects_other_format_versions(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("ef" * 32, SecResult(True, "van_eijk"))
    path = cache._path("ef" * 32)
    entry = json.loads(open(path).read())
    entry["version"] = CACHE_FORMAT_VERSION + 1
    with open(path, "w") as fh:
        json.dump(entry, fh)
    assert cache.get("ef" * 32) is None


def test_cache_inconclusive_opt_out(tmp_path):
    cache = ResultCache(tmp_path, cache_inconclusive=False)
    undecided = SecResult(None, "van_eijk", details={"inconclusive": True})
    assert not cache.put("12" * 32, undecided)
    assert cache.get("12" * 32) is None
    assert cache.put("34" * 32, SecResult(True, "van_eijk"))
