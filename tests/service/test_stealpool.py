"""StealPool: work-stealing dispatch, crash degradation, teardown hygiene.

The pool is the substrate under both the parallel refinement engine and
the FRAIG strategy racer, so its contract is tested on its own: batches
complete in any stealing order with results in submission order, a
SIGKILLed worker loses only its in-flight batch (re-queued, worker
re-forked, setup re-sent), budget replies surface as
:class:`ResourceBudgetExceeded`, handler errors as
:class:`StealPoolError`, and ``close()`` leaves no children behind.
"""

import os
import time

import pytest

from repro.errors import ResourceBudgetExceeded
from repro.service.procs import StealPool, StealPoolError

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="StealPool requires fork")


class EchoHandler:
    """Doubles batch payloads; optional per-payload behaviors for tests."""

    def __init__(self, scale=2):
        self.scale = scale
        self.offset = 0

    def setup(self, payload):
        self.offset = payload

    def batch(self, payload):
        if payload == "boom":
            raise RuntimeError("handler exploded")
        if payload == "budget":
            raise ResourceBudgetExceeded("out of budget")
        if payload == "die":
            os._exit(13)
        if payload == "sleep":
            time.sleep(0.2)
            return "slept"
        return payload * self.scale + self.offset


def make_pool(n_workers=2, **kwargs):
    return StealPool(n_workers, EchoHandler, (3,), **kwargs)


def test_results_arrive_in_submission_order():
    pool = make_pool(2)
    try:
        results = pool.run_batches(list(range(10)))
    finally:
        pool.close()
    assert results == [i * 3 for i in range(10)]


def test_broadcast_reaches_every_worker():
    pool = make_pool(2)
    try:
        pool.broadcast(100)
        results = pool.run_batches([1, 2, 3, 4])
    finally:
        pool.close()
    assert results == [103, 106, 109, 112]


def test_more_batches_than_workers_all_complete():
    pool = make_pool(1)
    try:
        results = pool.run_batches(list(range(25)))
    finally:
        pool.close()
    assert results == [i * 3 for i in range(25)]


def test_on_result_streams_and_reports_worker_index():
    pool = make_pool(2)
    seen = []
    try:
        pool.run_batches(
            [5, 6, 7],
            on_result=lambda bid, value, wi: seen.append((bid, value, wi)))
    finally:
        pool.close()
    assert {(bid, value) for bid, value, _ in seen} == {
        (0, 15), (1, 18), (2, 21)}
    assert all(0 <= wi < 2 for _, _, wi in seen)


def test_truthy_on_result_stops_early():
    pool = make_pool(2)
    try:
        results = pool.run_batches(
            [1] + ["sleep"] * 4,
            on_result=lambda bid, value, wi: value == 3)
    finally:
        pool.close()
    assert results[0] == 3
    # The undispatched tail and the abandoned in-flight sleep stay None.
    assert results.count(None) >= 3


def test_handler_error_raises_pool_error_with_traceback():
    pool = make_pool(2)
    try:
        with pytest.raises(StealPoolError, match="handler exploded"):
            pool.run_batches([1, "boom", 2])
    finally:
        pool.close()


def test_budget_reply_raises_resource_budget():
    pool = make_pool(2)
    try:
        with pytest.raises(ResourceBudgetExceeded, match="out of budget"):
            pool.run_batches([1, "budget", 2])
    finally:
        pool.close()


def test_poll_is_called_and_may_abort():
    pool = make_pool(1)
    calls = []

    def poll():
        calls.append(1)
        if len(calls) > 2:
            raise ResourceBudgetExceeded("polled out")

    try:
        with pytest.raises(ResourceBudgetExceeded, match="polled out"):
            pool.run_batches(["sleep"] * 20, poll=poll)
    finally:
        pool.close()
    assert calls


# ------------------------------------------------------ crash / respawn path


def test_worker_suicide_requeues_batch_and_respawns():
    """An externally SIGKILLed worker loses nothing: its batch is
    re-queued onto the respawned worker and every batch still completes
    with the right result."""
    respawned = []
    pool = StealPool(2, EchoHandler, (3,),
                     on_respawn=lambda wi: respawned.append(wi))
    try:
        # Everything completes even though one worker is killed externally
        # mid-run: kill after dispatch has begun.
        victim = pool._workers[0]
        os.kill(victim.proc.pid, 9)
        results = pool.run_batches(list(range(8)))
    finally:
        pool.close()
    assert results == [i * 3 for i in range(8)]
    assert respawned and respawned[0] == victim.index
    assert pool.respawns >= 1


def test_batch_that_always_kills_hits_respawn_limit():
    pool = StealPool(1, EchoHandler, (3,), max_respawns=2)
    try:
        with pytest.raises(StealPoolError, match="respawn limit"):
            pool.run_batches(["die"])
    finally:
        pool.close()
    assert pool.respawns == 2


def test_respawned_worker_receives_stored_setup():
    respawned = []
    pool = StealPool(1, EchoHandler, (3,),
                     on_respawn=lambda wi: respawned.append(wi))
    try:
        pool.broadcast(1000)
        os.kill(pool._workers[0].proc.pid, 9)
        results = pool.run_batches([1, 2])
    finally:
        pool.close()
    assert results == [1003, 1006]
    assert respawned == [0]


# ------------------------------------------------------------------- hygiene


def test_close_reaps_children_and_is_idempotent():
    pool = make_pool(2)
    pids = [w.proc.pid for w in pool._workers]
    procs = [w.proc for w in pool._workers]
    pool.run_batches([1, 2])
    pool.close()
    pool.close()
    assert all(not proc.is_alive() for proc in procs)
    for pid in pids:
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)


def test_close_kills_worker_stuck_in_a_batch():
    pool = make_pool(1)
    proc = pool._workers[0].proc
    # Dispatch a sleeping batch and abandon it via early stop on nothing:
    # close() must SIGTERM the busy child.
    pool._send(pool._workers[0], ("batch", 0, "sleep"))
    pool.close()
    assert not proc.is_alive()


def test_pool_requires_at_least_one_worker():
    with pytest.raises(ValueError, match=">= 1"):
        StealPool(0, EchoHandler)
