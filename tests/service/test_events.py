"""Event bus, JSONL log, and engine progress-event plumbing."""

import json

from repro.service import (
    Event,
    EventBus,
    JobSpec,
    JsonlEventWriter,
    read_event_log,
    run_job,
)
from repro.service import events as ev

from .helpers import tiny_pair


def test_bus_emit_and_subscribe():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    event = bus.emit(ev.JOB_STARTED, job="j1", method="van_eijk")
    assert seen == [event]
    assert event.type == ev.JOB_STARTED
    assert event.job == "j1"
    assert event.data["method"] == "van_eijk"
    assert event.ts > 0


def test_bus_survives_bad_subscriber():
    bus = EventBus()
    seen = []

    def explode(event):
        raise RuntimeError("subscriber bug")

    bus.subscribe(explode)
    bus.subscribe(seen.append)
    bus.emit(ev.JOB_FINISHED, job="j1")
    assert len(seen) == 1
    assert bus.subscriber_errors == 1


def test_unsubscribe():
    bus = EventBus()
    seen = []
    token = bus.subscribe(seen.append)
    bus.unsubscribe(token)
    bus.emit(ev.JOB_STARTED, job="j1")
    assert seen == []


def test_event_dict_roundtrip():
    event = Event(ev.JOB_PROGRESS, job="row", data={"kind": "iteration",
                                                    "iteration": 3})
    clone = Event.from_dict(event.as_dict())
    assert clone.type == event.type
    assert clone.job == event.job
    assert clone.data == event.data
    assert clone.ts == event.ts


def test_jsonl_writer_and_reader(tmp_path):
    path = tmp_path / "run.jsonl"
    bus = EventBus()
    with JsonlEventWriter(path) as writer:
        bus.subscribe(writer)
        bus.emit(ev.BATCH_STARTED, jobs=2)
        bus.emit(ev.JOB_FINISHED, job="a", verdict=True)
        assert writer.events_written == 2
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [entry["type"] for entry in lines] == [ev.BATCH_STARTED,
                                                  ev.JOB_FINISHED]
    events = read_event_log(path)
    assert events[1].job == "a"
    assert events[1].data["verdict"] is True


def test_run_job_emits_iteration_progress():
    spec, impl = tiny_pair()
    events = []
    result = run_job(JobSpec("tiny", spec, impl), emit=events.append)
    assert result.proved
    kinds = [event.data.get("kind") for event in events]
    assert "iteration" in kinds
    iteration_events = [e for e in events if e.data.get("kind") == "iteration"]
    assert all(e.type == ev.JOB_PROGRESS for e in iteration_events)
    assert all(e.job == "tiny" for e in iteration_events)
    first = iteration_events[0].data
    assert first["iteration"] == 1
    assert first["classes"] >= 1
    assert first["nodes"] >= 1


def test_run_job_bmc_progress_and_trace():
    spec, impl = tiny_pair()
    events = []
    result = run_job(
        JobSpec("tiny", spec, impl, method="bmc",
                options={"max_depth": 3}),
        emit=events.append,
    )
    assert result.inconclusive  # equivalent pair: BMC can never prove
    depths = [e.data["depth"] for e in events
              if e.data.get("kind") == "depth"]
    assert depths == [1, 2, 3]


def test_run_job_cancelled_before_start():
    spec, impl = tiny_pair()
    result = run_job(JobSpec("tiny", spec, impl),
                     cancel_check=lambda: True)
    assert result.inconclusive
    assert result.details["aborted"] == "cancelled"


def test_engine_cancel_check_aborts_mid_run():
    from repro.core import VanEijkVerifier

    spec, impl = tiny_pair()
    polls = []

    def cancel(polled=polls):
        polled.append(1)
        return True

    result = VanEijkVerifier(cancel_check=cancel).verify(
        spec, impl, match_outputs="order")
    assert polls  # the engine reached its first cancellation point
    assert result.inconclusive
    assert result.details["aborted"] == "cancelled"
