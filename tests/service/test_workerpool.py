"""Tests for the non-blocking WorkerPool surface the daemon drives."""

import time

import pytest

from repro.service import JobSpec, WorkerPool
from repro.service.events import EventBus, JOB_PROGRESS, JOB_STARTED

from .helpers import tiny_pair


def make_job(name="tiny", method="sat_sweep", **options):
    spec, impl = tiny_pair()
    return JobSpec(name, spec, impl, method=method, options=options,
                   match_outputs="order")


def spinner_job(name="spin"):
    return make_job(name, method="bmc", max_depth=1000000)


def poll_until(pool, predicate, timeout=60.0):
    """Poll the pool, collecting outcomes, until ``predicate(outcomes)``."""
    outcomes = []
    deadline = time.monotonic() + timeout
    while not predicate(outcomes):
        assert time.monotonic() < deadline, "pool never converged"
        outcomes.extend(pool.poll())
        time.sleep(0.02)
    return outcomes


def test_submit_poll_outcome():
    events = []
    bus = EventBus()
    bus.subscribe(events.append)
    pool = WorkerPool(workers=1, bus=bus)
    try:
        pid = pool.submit("t1", make_job())
        assert isinstance(pid, int)
        assert not pool.has_capacity()
        assert pool.active == 1

        outcomes = poll_until(pool, lambda o: len(o) == 1)
        outcome = outcomes[0]
        assert outcome.token == "t1"
        assert outcome.error is None
        assert not outcome.cancelled
        assert outcome.result.verdict is True
        assert pool.has_capacity() and pool.active == 0

        types = [e.type for e in events]
        assert JOB_STARTED in types
        assert JOB_PROGRESS in types  # worker progress relayed via poll()
    finally:
        pool.shutdown()


def test_capacity_and_duplicate_token_errors():
    pool = WorkerPool(workers=1)
    try:
        pool.submit("t1", spinner_job())
        with pytest.raises(RuntimeError):
            pool.submit("t2", spinner_job())  # pool full
        pool.workers = 2
        with pytest.raises(RuntimeError):
            pool.submit("t1", spinner_job())  # duplicate token
    finally:
        pool.shutdown()


def test_cancel_running_job():
    pool = WorkerPool(workers=1, grace=5.0)
    try:
        pool.submit("spin", spinner_job())
        # let the worker actually get going
        poll_until(pool, lambda o: pool.active == 1, timeout=10)
        assert pool.cancel("spin") is True
        assert pool.cancel("nonexistent") is False
        outcomes = poll_until(pool, lambda o: len(o) == 1)
        outcome = outcomes[0]
        assert outcome.cancelled is True
        assert outcome.result.result.inconclusive
    finally:
        pool.shutdown()


def test_job_time_limit_hard_kill():
    pool = WorkerPool(workers=1, job_time_limit=0.5, grace=0.5)
    try:
        # the pool seeds the engine's cooperative budget and backs it with
        # a hard kill at job_time_limit + grace
        job = spinner_job()
        assert "time_limit" not in job.options
        pool.submit("slow", job)
        outcomes = poll_until(pool, lambda o: len(o) == 1, timeout=30)
        outcome = outcomes[0]
        assert outcome.token == "slow"
        assert outcome.result.result.inconclusive
    finally:
        pool.shutdown()


def test_budget_seeding():
    pool = WorkerPool(workers=1, job_time_limit=7.5)
    try:
        assert pool._budgeted(make_job()).options["time_limit"] == 7.5
        explicit = make_job(time_limit=1.0)
        assert pool._budgeted(explicit).options["time_limit"] == 1.0
        untimed = make_job(method="explicit")
        assert "time_limit" not in pool._budgeted(untimed).options
    finally:
        pool.shutdown()


def test_shutdown_returns_outcomes_for_running_jobs():
    pool = WorkerPool(workers=2, grace=3.0)
    pool.submit("a", spinner_job("a"))
    pool.submit("b", spinner_job("b"))
    outcomes = pool.shutdown()
    assert sorted(o.token for o in outcomes) == ["a", "b"]
    assert all(o.cancelled for o in outcomes)
    assert pool.active == 0
