"""Shared circuit fixtures for the service tests."""

from repro.netlist import Circuit, GateType


def tiny_pair():
    """A trivially equivalent (spec, impl) pair (impl has a spare buffer)."""
    spec = Circuit("tiny_spec")
    spec.add_input("a")
    spec.add_input("b")
    spec.add_gate("d", GateType.AND, ["a", "b"])
    spec.add_register("r", "d", init=False)
    spec.add_gate("o", GateType.BUF, ["r"])
    spec.add_output("o")

    impl = Circuit("tiny_impl")
    impl.add_input("a")
    impl.add_input("b")
    impl.add_gate("d0", GateType.AND, ["a", "b"])
    impl.add_gate("d", GateType.BUF, ["d0"])
    impl.add_register("r", "d", init=False)
    impl.add_gate("o", GateType.BUF, ["r"])
    impl.add_output("o")
    return spec, impl


def magic_pair(n_inputs=20):
    """A pair that differs only when *all* inputs are 1 simultaneously.

    Random simulation (a few hundred patterns) essentially never hits the
    all-ones vector (probability 2^-n per pattern), so the van Eijk engine
    cannot refute; BMC finds the depth-2 counterexample immediately.  This
    is the workload the portfolio's falsifier lane exists for.
    """
    names = ["x{}".format(i) for i in range(n_inputs)]

    spec = Circuit("magic_spec")
    for name in names:
        spec.add_input(name)
    spec.add_gate("d", GateType.OR, [names[0], names[1]])
    spec.add_register("r", "d", init=False)
    spec.add_gate("o", GateType.BUF, ["r"])
    spec.add_output("o")

    impl = Circuit("magic_impl")
    for name in names:
        impl.add_input(name)
    impl.add_gate("base", GateType.OR, [names[0], names[1]])
    impl.add_gate("magic", GateType.AND, list(names))
    impl.add_gate("not_magic", GateType.NOT, ["magic"])
    impl.add_gate("d", GateType.AND, ["base", "not_magic"])
    impl.add_register("r", "d", init=False)
    impl.add_gate("o", GateType.BUF, ["r"])
    impl.add_output("o")
    return spec, impl
