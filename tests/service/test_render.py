"""Snapshot test for the live event renderer.

A scripted event sequence — batch lifecycle, retries, fallback, portfolio
and the daemon's server-side events — is replayed through
:class:`LiveRenderer` and the rendered transcript compared line by line.
"""

import io

from repro.service import events as ev
from repro.service.render import LiveRenderer


def render(sequence, verbose=False):
    stream = io.StringIO()
    renderer = LiveRenderer(stream=stream, verbose=verbose)
    bus = ev.EventBus()
    bus.subscribe(renderer)
    for type_, job, data in sequence:
        bus.emit(type_, job=job, **data)
    return stream.getvalue().splitlines()


def test_batch_transcript():
    lines = render([
        (ev.BATCH_STARTED, None, {"jobs": 3, "workers": 2}),
        (ev.JOB_QUEUED, "s27", {"index": 0, "method": "van_eijk"}),
        (ev.JOB_CACHED, "s27", {"verdict": True, "method": "van_eijk"}),
        (ev.JOB_STARTED, "s386", {"method": "van_eijk"}),
        (ev.JOB_RETRY, "s386", {"attempt": 2, "reason": "worker crashed"}),
        (ev.JOB_STARTED, "s386", {"method": "van_eijk", "attempt": 2}),
        (ev.JOB_FINISHED, "s386", {"verdict": True, "method": "van_eijk",
                                   "seconds": 1.5, "peak_nodes": 420}),
        (ev.JOB_STARTED, "s510", {"method": "van_eijk"}),
        (ev.JOB_FALLBACK, "s510", {"method": "bmc"}),
        (ev.JOB_FINISHED, "s510", {"verdict": False, "method": "bmc",
                                   "seconds": 0.25}),
        (ev.BATCH_FINISHED, None, {"jobs": 3, "seconds": 2.0, "proved": 2,
                                   "refuted": 1, "undecided": 0,
                                   "cached": 1}),
    ])
    assert lines == [
        "batch: 3 jobs on 2 workers",
        "[  1/3] s27          van_eijk   proved (cached)",
        "[  1/3] s386         van_eijk   started",
        "[  1/3] s386         retry (attempt 2): worker crashed",
        "[  1/3] s386         van_eijk   started (attempt 2)",
        "[  2/3] s386         van_eijk   proved in 1.50s nodes=420",
        "[  2/3] s510         van_eijk   started",
        "[  2/3] s510         falling back to bmc",
        "[  3/3] s510         bmc        REFUTED in 0.25s",
        "batch: done in 2.00s — 2 proved, 1 refuted, 0 undecided (1 cached)",
    ]


def test_server_transcript():
    lines = render([
        (ev.SERVER_STARTED, None, {"host": "127.0.0.1", "port": 8439,
                                   "workers": 2, "pid": 4242}),
        (ev.JOB_SUBMITTED, "j00000001-abc123",
         {"name": "s386", "method": "sat_sweep", "client": "127.0.0.1"}),
        (ev.JOB_REQUEUED, "j00000001-abc123",
         {"name": "s386", "requeues": 1, "reason": "daemon restart"}),
        (ev.JOB_CANCELLED, "j00000001-abc123", {"name": "s386",
                                                "method": "sat_sweep"}),
        (ev.CLIENT_THROTTLED, None, {"client": "10.0.0.9",
                                     "path": "/v1/jobs",
                                     "reason": "queue full"}),
        (ev.CLIENT_THROTTLED, None, {"client": "10.0.0.9",
                                     "path": "/v1/stats",
                                     "retry_after": 1}),
        (ev.SERVER_STOPPED, None, {"host": "127.0.0.1", "port": 8439,
                                   "uptime_seconds": 12.0}),
    ])
    assert lines == [
        "server: listening on 127.0.0.1:8439 (2 workers, pid 4242)",
        "s386         submitted as j00000001-abc123 (sat_sweep)",
        "s386         re-queued (attempt 1): daemon restart",
        "s386         cancelled",
        "server: throttled 10.0.0.9 on /v1/jobs (queue full)",
        "server: throttled 10.0.0.9 on /v1/stats",
        "server: stopped after 12.00s",
    ]


def test_portfolio_transcript():
    lines = render([
        (ev.PORTFOLIO_STARTED, "s27", {"methods": ["van_eijk", "bmc"]}),
        (ev.ENGINE_WON, "s27", {"method": "van_eijk", "verdict": True,
                                "seconds": 0.5}),
        (ev.ENGINE_CANCELLED, "s27", {"method": "bmc", "escalated": True}),
    ])
    assert lines == [
        "portfolio: racing van_eijk/bmc on s27",
        "portfolio: van_eijk won with proved in 0.50s",
        "portfolio: cancelled bmc (killed)",
    ]


def test_quiet_mode_skips_progress_ticks():
    sequence = [
        (ev.JOB_PROGRESS, "s27", {"kind": "refinement_round", "round": 3,
                                  "classes": 17}),
    ]
    assert render(sequence, verbose=False) == []
    verbose_lines = render(sequence, verbose=True)
    assert verbose_lines == ["s27          · refinement_round classes=17 round=3"]


def test_error_annotation_on_finish():
    lines = render([
        (ev.JOB_FINISHED, "bad", {"verdict": None, "method": "van_eijk",
                                  "error": "worker crashed (exit code 1)"}),
    ])
    assert lines == [
        "bad          van_eijk   undecided in -"
        " error=worker crashed (exit code 1)",
    ]
