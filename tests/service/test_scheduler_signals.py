"""Graceful SIGINT/SIGTERM handling in the batch scheduler.

A scripted engine sends the scheduler's own process a signal mid-job;
the batch must finish that job, abort the rest with an "interrupted"
reason, flush the event stream and restore the previous handlers.
"""

import os
import signal

import pytest

from repro.reach.result import SecResult
from repro.service import BatchScheduler, JobSpec
from repro.service import events as ev
from repro.service.events import EventBus
from repro.service.worker import register_method, unregister_method

from .helpers import tiny_pair


@pytest.fixture
def self_signal_method():
    """An engine that signals the current process, then proves its job."""
    state = {"signals": [signal.SIGINT]}

    def runner(job, progress, cancel_check):
        for signum in state["signals"]:
            os.kill(os.getpid(), signum)
        return SecResult(equivalent=True, method="self_signal")

    register_method("self_signal", runner)
    try:
        yield state
    finally:
        unregister_method("self_signal")


def make_jobs(n, method="self_signal"):
    spec, impl = tiny_pair()
    jobs = [JobSpec("sig-0", spec, impl, method=method,
                    match_outputs="order")]
    jobs += [JobSpec("sig-{}".format(i), spec, impl, method="sat_sweep",
                     match_outputs="order") for i in range(1, n)]
    return jobs


def test_sigint_aborts_remaining_inline_jobs(self_signal_method):
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    scheduler = BatchScheduler(workers=0, bus=bus)
    before = signal.getsignal(signal.SIGINT)

    results = scheduler.run(make_jobs(3))

    assert scheduler.interrupted == "SIGINT"
    assert signal.getsignal(signal.SIGINT) == before  # handlers restored
    # the in-flight job still completed...
    assert results[0].verdict is True
    # ...but the rest were aborted, not run
    for result in results[1:]:
        assert result.verdict is None
        assert result.result.details["aborted"] == "interrupted (SIGINT)"
    finished = [e for e in seen if e.type == ev.BATCH_FINISHED]
    assert finished[-1].data["interrupted"] == "SIGINT"


def test_sigterm_is_also_graceful(self_signal_method):
    self_signal_method["signals"] = [signal.SIGTERM]
    scheduler = BatchScheduler(workers=0)
    results = scheduler.run(make_jobs(2))
    assert scheduler.interrupted == "SIGTERM"
    assert results[0].verdict is True
    assert results[1].result.details["aborted"] == "interrupted (SIGTERM)"


def test_second_sigint_falls_through(self_signal_method):
    self_signal_method["signals"] = [signal.SIGINT, signal.SIGINT]
    scheduler = BatchScheduler(workers=0)
    before = signal.getsignal(signal.SIGINT)
    with pytest.raises(KeyboardInterrupt):
        scheduler.run(make_jobs(2))
    # even on the forced path the previous handler comes back
    assert signal.getsignal(signal.SIGINT) == before


def test_uninterrupted_batch_reports_no_interruption():
    spec, impl = tiny_pair()
    scheduler = BatchScheduler(workers=0)
    results = scheduler.run([JobSpec("tiny", spec, impl, method="sat_sweep",
                                     match_outputs="order")])
    assert scheduler.interrupted is None
    assert results[0].verdict is True
