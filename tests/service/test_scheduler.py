"""Batch scheduler: parallel verdict parity, caching, retries, budgets."""

import multiprocessing
import os
import time

from repro.circuits import table1_suite
from repro.reach import SecResult
from repro.service import (
    BatchScheduler,
    EventBus,
    JobSpec,
    ResultCache,
    register_method,
    unregister_method,
)
from repro.service import events as ev

from .helpers import magic_pair, tiny_pair


def _suite_jobs(count=6):
    jobs = []
    for row in table1_suite(scales=("small",))[:count]:
        spec, impl = row.pair()
        jobs.append(JobSpec(row.name, spec, impl,
                            options={"time_limit": 120}))
    return jobs


def test_parallel_verdicts_match_sequential():
    jobs = _suite_jobs(6)
    sequential = BatchScheduler(workers=0).run(jobs)
    parallel = BatchScheduler(workers=4).run(jobs)
    assert multiprocessing.active_children() == []
    assert [r.name for r in parallel] == [r.name for r in sequential]
    assert [r.verdict for r in sequential] == [True] * 6
    assert [r.verdict for r in parallel] == [r.verdict for r in sequential]


def test_cache_skips_solved_jobs(tmp_path):
    jobs = _suite_jobs(3)
    cache = ResultCache(tmp_path)
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    first = BatchScheduler(workers=0, cache=cache, bus=bus).run(jobs)
    assert all(not r.cached for r in first)
    t0 = time.monotonic()
    second = BatchScheduler(workers=0, cache=cache, bus=bus).run(jobs)
    rerun_seconds = time.monotonic() - t0
    assert all(r.cached for r in second)
    assert [r.verdict for r in second] == [r.verdict for r in first]
    # A cached rerun does no verification work at all: only cache lookups.
    assert rerun_seconds < sum(r.result.seconds for r in first) + 1.0
    cached_events = [e for e in seen if e.type == ev.JOB_CACHED]
    assert len(cached_events) == len(jobs)


def test_cache_key_isolation_between_methods(tmp_path):
    spec, impl = tiny_pair()
    cache = ResultCache(tmp_path)
    scheduler = BatchScheduler(workers=0, cache=cache)
    van_eijk = scheduler.run([JobSpec("j", spec, impl)])[0]
    bmc = scheduler.run(
        [JobSpec("j", spec, impl, method="bmc",
                 options={"max_depth": 2})])[0]
    assert van_eijk.verdict is True
    assert bmc.verdict is None  # not served the van_eijk cache entry
    assert not bmc.cached


def test_retry_on_crash_then_success(tmp_path):
    marker = str(tmp_path / "crashed-once")

    def crashy(job, progress, cancel_check):
        if not os.path.exists(job.options["marker"]):
            with open(job.options["marker"], "w"):
                pass
            os._exit(3)
        return SecResult(True, method="crashy", seconds=0.0)

    register_method("crashy", crashy)
    try:
        spec, impl = tiny_pair()
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        job = JobSpec("flaky", spec, impl, method="crashy",
                      options={"marker": marker})
        results = BatchScheduler(workers=1, bus=bus, retries=1).run([job])
    finally:
        unregister_method("crashy")
    assert multiprocessing.active_children() == []
    assert results[0].verdict is True
    assert results[0].attempts == 2
    retry_events = [e for e in seen if e.type == ev.JOB_RETRY]
    assert len(retry_events) == 1
    assert "exit code 3" in retry_events[0].data["reason"]


def test_crash_without_retries_reports_error():
    def always_crash(job, progress, cancel_check):
        os._exit(4)

    register_method("always_crash", always_crash)
    try:
        spec, impl = tiny_pair()
        job = JobSpec("doomed", spec, impl, method="always_crash")
        results = BatchScheduler(workers=1, retries=0).run([job])
    finally:
        unregister_method("always_crash")
    assert multiprocessing.active_children() == []
    assert results[0].verdict is None
    assert "exit code 4" in results[0].error
    assert results[0].result.details["aborted"] == results[0].error


def test_inconclusive_fallback_to_bmc():
    spec, impl = magic_pair()
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    # van_eijk cannot decide this pair; the scheduler resubmits it to the
    # falsifier, which finds the counterexample.
    job = JobSpec("magic", spec, impl,
                  options={"time_limit": 60, "max_retiming_rounds": 1})
    results = BatchScheduler(workers=0, bus=bus, fallback_method="bmc",
                             fallback_options={"max_depth": 8}).run([job])
    result = results[0]
    assert result.verdict is False
    assert result.result.method == "bmc"
    assert result.result.counterexample is not None
    assert any(e.type == ev.JOB_FALLBACK for e in seen)


def test_fallback_emits_engine_fallback_event():
    spec, impl = magic_pair()
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    job = JobSpec("magic", spec, impl,
                  options={"time_limit": 60, "max_retiming_rounds": 1})
    BatchScheduler(workers=0, bus=bus, fallback_method="bmc",
                   fallback_options={"max_depth": 8}).run([job])
    events = [e for e in seen if e.type == ev.ENGINE_FALLBACK]
    assert len(events) == 1
    payload = events[0].data
    assert payload["engine"] == "van_eijk"
    assert payload["fallback"] == "bmc"
    assert payload["reason"]


def test_no_fallback_fails_fast():
    spec, impl = magic_pair()
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    job = JobSpec("magic", spec, impl,
                  options={"time_limit": 60, "max_retiming_rounds": 1})
    results = BatchScheduler(workers=0, bus=bus, fallback_method="bmc",
                             no_fallback=True).run([job])
    assert results[0].verdict is None
    assert results[0].result.method == "van_eijk"
    assert not any(e.type == ev.JOB_FALLBACK for e in seen)
    assert not any(e.type == ev.ENGINE_FALLBACK for e in seen)


def test_inconclusive_sweep_falls_back_to_k_induction():
    from repro.circuits import onehot_ring_pair

    spec, impl = onehot_ring_pair()
    job = JobSpec("onehot", spec, impl, method="sat_sweep",
                  match_outputs="order")
    results = BatchScheduler(workers=0, fallback_method="k_induction",
                             fallback_options={"max_depth": 8}).run([job])
    result = results[0]
    assert result.verdict is True
    assert result.result.method == "k_induction"


def test_batch_time_budget_aborts_cleanly():
    def sleepy(job, progress, cancel_check):
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if cancel_check is not None and cancel_check():
                return SecResult(None, method="sleepy",
                                 details={"aborted": "cancelled"})
            time.sleep(0.02)
        return SecResult(True, method="sleepy")

    register_method("sleepy", sleepy)
    try:
        spec, impl = tiny_pair()
        jobs = [JobSpec("sleep{}".format(i), spec, impl, method="sleepy")
                for i in range(3)]
        t0 = time.monotonic()
        results = BatchScheduler(workers=2, total_time_limit=1.0,
                                 grace=2.0).run(jobs)
        elapsed = time.monotonic() - t0
    finally:
        unregister_method("sleepy")
    assert multiprocessing.active_children() == []
    assert elapsed < 15
    assert all(r.verdict is None for r in results)
    assert all("budget" in r.result.details.get("aborted", "")
               or "cancel" in r.result.details.get("aborted", "")
               for r in results)


def test_event_stream_ordering():
    spec, impl = tiny_pair()
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    BatchScheduler(workers=0, bus=bus).run(
        [JobSpec("tiny", spec, impl)])
    types = [e.type for e in seen]
    assert types[0] == ev.BATCH_STARTED
    assert types[-1] == ev.BATCH_FINISHED
    assert types.index(ev.JOB_QUEUED) < types.index(ev.JOB_STARTED)
    assert types.index(ev.JOB_STARTED) < types.index(ev.JOB_FINISHED)
    assert ev.JOB_PROGRESS in types  # engine iterations are streamed
    finished = next(e for e in seen if e.type == ev.JOB_FINISHED)
    assert finished.data["verdict"] is True
    assert finished.data["peak_nodes"] >= 1


def test_results_preserve_submission_order():
    jobs = _suite_jobs(4)
    results = BatchScheduler(workers=3).run(jobs)
    assert [r.name for r in results] == [j.name for j in jobs]
    assert multiprocessing.active_children() == []
