"""CDCL solver tests: unit cases, assumptions, and random CNF vs. brute force."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SatError
from repro.sat import Cnf, Solver, luby


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {v + 1: bits[v] for v in range(num_vars)}
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return assignment
    return None


def check_model(model, clauses):
    for clause in clauses:
        assert any(model.get(abs(l), False) == (l > 0) for l in clause), clause


def test_trivial_sat():
    s = Solver()
    s.new_var()
    assert s.add_clause([1])
    assert s.solve() is True
    assert s.model()[1] is True


def test_trivial_unsat():
    s = Solver()
    s.new_var()
    s.add_clause([1])
    assert s.add_clause([-1]) is False or s.solve() is False


def test_unit_propagation_chain():
    s = Solver()
    s.ensure_vars(4)
    s.add_clause([1])
    s.add_clause([-1, 2])
    s.add_clause([-2, 3])
    s.add_clause([-3, 4])
    assert s.solve() is True
    model = s.model()
    assert all(model[v] for v in (1, 2, 3, 4))


def test_simple_conflict_learning():
    s = Solver()
    s.ensure_vars(3)
    # (x1 | x2) & (x1 | -x2) & (-x1 | x3) & (-x1 | -x3) is UNSAT.
    s.add_clause([1, 2])
    s.add_clause([1, -2])
    s.add_clause([-1, 3])
    s.add_clause([-1, -3])
    assert s.solve() is False


def test_tautology_and_duplicates():
    s = Solver()
    s.ensure_vars(2)
    assert s.add_clause([1, -1])        # tautology: dropped
    assert s.add_clause([1, 1, 2])      # duplicate literal collapsed
    assert s.solve() is True


def test_bad_literal_rejected():
    s = Solver()
    with pytest.raises(SatError):
        s.add_clause([0])
    with pytest.raises(SatError):
        s.add_clause(["x"])


def test_assumptions_sat_unsat():
    s = Solver()
    s.ensure_vars(3)
    s.add_clause([-1, 2])
    s.add_clause([-2, 3])
    assert s.solve(assumptions=[1]) is True
    assert s.model()[3] is True
    assert s.solve(assumptions=[1, -3]) is False
    # The solver stays usable after an UNSAT-under-assumptions answer.
    assert s.solve(assumptions=[1]) is True
    assert s.solve() is True


def test_incremental_clause_addition():
    s = Solver()
    s.ensure_vars(2)
    s.add_clause([1, 2])
    assert s.solve(assumptions=[-1]) is True
    assert s.model()[2] is True
    s.add_clause([-2])
    assert s.solve(assumptions=[-1]) is False
    assert s.solve() is True
    assert s.model()[1] is True


def test_conflicting_assumptions():
    s = Solver()
    s.ensure_vars(2)
    s.add_clause([1, 2])
    assert s.solve(assumptions=[-1, 1]) is False


def test_pigeonhole_unsat():
    # 4 pigeons, 3 holes: var p(i,h) = 3*i + h + 1.
    s = Solver()
    pigeons, holes = 4, 3
    s.ensure_vars(pigeons * holes)

    def var(i, h):
        return 3 * i + h + 1

    for i in range(pigeons):
        s.add_clause([var(i, h) for h in range(holes)])
    for h in range(holes):
        for i in range(pigeons):
            for j in range(i + 1, pigeons):
                s.add_clause([-var(i, h), -var(j, h)])
    assert s.solve() is False


def test_php_3_into_3_sat():
    s = Solver()
    s.ensure_vars(9)

    def var(i, h):
        return 3 * i + h + 1

    for i in range(3):
        s.add_clause([var(i, h) for h in range(3)])
    for h in range(3):
        for i in range(3):
            for j in range(i + 1, 3):
                s.add_clause([-var(i, h), -var(j, h)])
    assert s.solve() is True
    model = s.model()
    used = [h for i in range(3) for h in range(3) if model[var(i, h)]]
    assert len(set(used)) == 3


def test_conflict_budget_returns_none():
    # A hard UNSAT instance with a conflict budget of 1 must give up.
    s = Solver()
    pigeons, holes = 6, 5
    s.ensure_vars(pigeons * holes)

    def var(i, h):
        return holes * i + h + 1

    for i in range(pigeons):
        s.add_clause([var(i, h) for h in range(holes)])
    for h in range(holes):
        for i in range(pigeons):
            for j in range(i + 1, pigeons):
                s.add_clause([-var(i, h), -var(j, h)])
    assert s.solve(conflict_budget=1) is None
    # With no budget it still finishes.
    assert s.solve() is False


def test_luby_sequence():
    assert [luby(i) for i in range(1, 16)] == [
        1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8
    ]


def random_cnf(rng, num_vars, num_clauses, width=3):
    clauses = []
    for _ in range(num_clauses):
        size = rng.randint(1, width)
        variables = rng.sample(range(1, num_vars + 1), min(size, num_vars))
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return clauses


@settings(max_examples=120, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_random_cnf_matches_brute_force(seed):
    rng = random.Random(seed)
    num_vars = rng.randint(1, 8)
    num_clauses = rng.randint(1, 24)
    clauses = random_cnf(rng, num_vars, num_clauses)
    s = Solver()
    s.ensure_vars(num_vars)
    ok = True
    for clause in clauses:
        ok = s.add_clause(clause) and ok
    result = s.solve() if ok else False
    expected = brute_force_sat(num_vars, clauses)
    assert result == (expected is not None)
    if result:
        model = s.model()
        full_model = {v: model.get(v, False) for v in range(1, num_vars + 1)}
        check_model(full_model, clauses)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_random_assumptions_match_brute_force(seed):
    rng = random.Random(seed)
    num_vars = rng.randint(2, 7)
    clauses = random_cnf(rng, num_vars, rng.randint(1, 18))
    assumed = rng.sample(range(1, num_vars + 1), rng.randint(1, 2))
    assumptions = [v if rng.random() < 0.5 else -v for v in assumed]
    s = Solver()
    s.ensure_vars(num_vars)
    ok = True
    for clause in clauses:
        ok = s.add_clause(clause) and ok
    result = s.solve(assumptions=assumptions) if ok else False
    expected = brute_force_sat(
        num_vars, clauses + [[lit] for lit in assumptions]
    )
    assert result == (expected is not None)
    # Solver must remain consistent for a follow-up unassumed query.
    base = s.solve() if ok else False
    assert base == (brute_force_sat(num_vars, clauses) is not None)


def test_statistics_counters():
    s = Solver()
    s.ensure_vars(3)
    s.add_clause([1, 2, 3])
    s.add_clause([-1, -2])
    s.solve()
    assert s.propagations >= 0
    assert s.decisions >= 1


def test_cnf_container_and_dimacs():
    cnf = Cnf()
    a, b = cnf.new_vars(2)
    cnf.add_clause([a, -b])
    cnf.add_clause([b])
    text = cnf.to_dimacs()
    assert text.startswith("p cnf 2 2")
    again = Cnf.from_dimacs(text)
    assert again.num_vars == 2
    assert again.clauses == [[1, -2], [2]]
    s = Solver()
    assert s.add_cnf(again)
    assert s.solve() is True
    assert s.model()[2] is True


def test_cnf_errors():
    cnf = Cnf()
    with pytest.raises(SatError):
        cnf.add_clause([1])  # variable not allocated
    cnf.new_var()
    with pytest.raises(SatError):
        cnf.add_clause([])
    with pytest.raises(SatError):
        Cnf.from_dimacs("1 2 0\n")
    with pytest.raises(SatError):
        Cnf.from_dimacs("p qbf 1 1\n1 0\n")
