"""Property tests for the solver's incremental invariant.

``src/repro/sat/solver.py`` documents that interleaving ``add_clause`` and
``solve(assumptions=...)`` must behave exactly like a fresh solver handed
the accumulated clause set — learned clauses, VSIDS activities, saved
phases and watch lists carried across queries must never change a verdict.
These tests drive randomly generated interleavings (including queries
aborted by ``conflict_budget``) and cross-check every answer against a
fresh re-solve and, where small enough, brute force.
"""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.sat import Solver

NUM_VARS = 6


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {v + 1: bits[v] for v in range(num_vars)}
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return True
    return False


def fresh_solve(num_vars, clauses, assumptions=()):
    """Verdict of a brand-new solver on the accumulated CNF."""
    s = Solver()
    s.ensure_vars(num_vars)
    ok = True
    for clause in clauses:
        ok = s.add_clause(clause) and ok
    if not ok:
        return False
    return s.solve(assumptions=assumptions)


def assert_model_satisfies(solver, num_vars, clauses, assumptions):
    model = solver.model()
    full = {v: model.get(v, False) for v in range(1, num_vars + 1)}
    for clause in clauses:
        assert any(full[abs(l)] == (l > 0) for l in clause), clause
    for lit in assumptions:
        assert full[abs(lit)] == (lit > 0), lit


def random_clause(rng):
    size = rng.randint(1, 4)
    variables = rng.sample(range(1, NUM_VARS + 1), size)
    return [v if rng.random() < 0.5 else -v for v in variables]


def random_assumptions(rng):
    count = rng.randint(0, 3)
    assumed = rng.sample(range(1, NUM_VARS + 1), count)
    return [v if rng.random() < 0.5 else -v for v in assumed]


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_interleaved_ops_match_fresh_resolve(seed):
    """Any add/solve interleaving agrees with fresh-solver re-solves."""
    rng = random.Random(seed)
    incremental = Solver()
    incremental.ensure_vars(NUM_VARS)
    accumulated = []
    ok = True
    for _ in range(30):
        op = rng.random()
        if op < 0.5:
            clause = random_clause(rng)
            accumulated.append(clause)
            ok = incremental.add_clause(clause) and ok
            if not ok:
                # add_clause detected root-level unsatisfiability; the
                # accumulated CNF must really be UNSAT.
                assert not brute_force_sat(NUM_VARS, accumulated)
        else:
            assumptions = random_assumptions(rng)
            verdict = incremental.solve(assumptions=assumptions)
            if not ok:
                verdict = False
            expected = brute_force_sat(
                NUM_VARS, accumulated + [[lit] for lit in assumptions]
            )
            assert verdict == expected
            assert verdict == fresh_solve(NUM_VARS, accumulated, assumptions)
            if verdict:
                assert_model_satisfies(
                    incremental, NUM_VARS, accumulated, assumptions
                )
        if not ok:
            break


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_budget_abort_leaves_solver_reusable(seed):
    """A ``conflict_budget`` abort (None) must not corrupt later queries."""
    rng = random.Random(seed)
    incremental = Solver()
    incremental.ensure_vars(NUM_VARS)
    accumulated = []
    ok = True
    for _ in range(20):
        clause = random_clause(rng)
        accumulated.append(clause)
        ok = incremental.add_clause(clause) and ok
        if not ok:
            break
        assumptions = random_assumptions(rng)
        # A tiny budget may or may not abort; either way the follow-up
        # unbudgeted query must match a fresh solver exactly.
        budgeted = incremental.solve(
            assumptions=assumptions, conflict_budget=rng.randint(0, 2)
        )
        verdict = incremental.solve(assumptions=assumptions)
        if budgeted is not None:
            assert budgeted == verdict
        expected = brute_force_sat(
            NUM_VARS, accumulated + [[lit] for lit in assumptions]
        )
        assert verdict == expected
        if verdict:
            assert_model_satisfies(
                incremental, NUM_VARS, accumulated, assumptions
            )


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_simplify_after_retraction_preserves_verdicts(seed):
    """``simplify()`` after unit-clause retraction never changes answers.

    The k-induction engine retires candidate-invariant groups mid-run with
    ``add_clause([-act])`` + ``simplify()`` and keeps querying the same
    solver under assumptions.  Property: for any mix of plain and guarded
    random clauses, any retired subset of the guards, the simplified
    incremental solver's verdict on any later assumption query (including
    queries re-assuming live *and* retired guards) equals a fresh solver
    handed the accumulated CNF.
    """
    rng = random.Random(seed)
    n_guards = rng.randint(1, 4)
    total_vars = NUM_VARS + n_guards
    guards = list(range(NUM_VARS + 1, total_vars + 1))
    incremental = Solver()
    incremental.ensure_vars(total_vars)
    accumulated = []
    ok = True
    for _ in range(rng.randint(5, 20)):
        clause = random_clause(rng)
        if rng.random() < 0.5:  # guard it under a random activation var
            clause = clause + [-rng.choice(guards)]
        accumulated.append(clause)
        ok = incremental.add_clause(clause) and ok
    retired = [g for g in guards if rng.random() < 0.5]
    for g in retired:
        accumulated.append([-g])
        ok = incremental.add_clause([-g]) and ok
    if ok:
        ok = incremental.simplify()
    if not ok:
        assert fresh_solve(total_vars, accumulated) is False
        return
    for _ in range(4):
        assumptions = random_assumptions(rng)
        # Mix in guard literals: live ones positively or negatively, and
        # sometimes a retired one (the query must then come back UNSAT).
        for g in guards:
            if rng.random() < 0.4:
                assumptions.append(g if rng.random() < 0.7 else -g)
        verdict = incremental.solve(assumptions=assumptions)
        assert verdict == fresh_solve(total_vars, accumulated, assumptions)
        if any(g in assumptions for g in retired):
            assert verdict is False
        if verdict:
            assert_model_satisfies(
                incremental, total_vars, accumulated, assumptions)


def _pigeonhole(solver, pigeons, holes, guard=None):
    """Encode PHP(pigeons, holes); clauses guarded by ``guard`` if given."""

    def var(i, h):
        return holes * i + h + 1

    solver.ensure_vars(pigeons * holes)
    extra = [] if guard is None else [-guard]
    for i in range(pigeons):
        solver.add_clause(extra + [var(i, h) for h in range(holes)])
    for h in range(holes):
        for i in range(pigeons):
            for j in range(i + 1, pigeons):
                solver.add_clause(extra + [-var(i, h), -var(j, h)])


def test_activation_literal_retraction():
    """Guarded constraint groups retract with their activation literal.

    This is the exact usage pattern of the incremental SAT backend: a
    constraint set is added under a fresh activation literal, queried with
    the literal assumed true, then retired by the unit clause ``[-act]``.
    """
    s = Solver()
    _pigeonhole(s, 3, 3)  # base vars 1..9; satisfiable (a perfect matching)
    act = s.new_var()
    # Guarded: force pigeon 0 out of every hole -> UNSAT under [act].
    for h in range(3):
        s.add_clause([-act, -(h + 1)])
    assert s.solve(assumptions=[act]) is False
    learned_after_first = len(s.learned)
    # The base formula (guard unasserted) is still satisfiable.
    assert s.solve() is True
    # Learned clauses persisted across the UNSAT-under-assumptions query.
    assert len(s.learned) >= learned_after_first
    # Re-query under the guard: still UNSAT, solver still reusable.
    assert s.solve(assumptions=[act]) is False
    # Retire the group for good; the base stays SAT.
    assert s.add_clause([-act])
    assert s.solve() is True


def test_stats_snapshot_keys_and_monotonicity():
    s = Solver()
    _pigeonhole(s, 4, 3)
    before = s.stats()
    for key in ("conflicts", "decisions", "propagations", "restarts",
                "learned", "clauses", "num_vars"):
        assert key in before
    assert s.solve() is False
    after = s.stats()
    for key in ("conflicts", "decisions", "propagations", "restarts"):
        assert after[key] >= before[key]
    assert after["conflicts"] > 0
    assert after["clauses"] == before["clauses"]


def test_simplify_drops_retired_group():
    """Retiring a guarded group and simplifying shrinks the clause DB."""
    s = Solver()
    _pigeonhole(s, 3, 3)
    base_clauses = len(s.clauses)
    act = s.new_var()
    for h in range(3):
        s.add_clause([-(h + 1), -act])
    assert len(s.clauses) == base_clauses + 3
    assert s.solve(assumptions=[act]) is False
    assert s.add_clause([-act])
    assert s.simplify()
    # The guarded clauses are root-satisfied and physically gone.
    assert len(s.clauses) == base_clauses
    assert s.solve() is True
    assert s.ok


def test_shared_assumption_prefix_reuses_trail():
    """Re-assuming the same prefix must not re-propagate its cone."""
    s = Solver()
    guard = None
    n = 60
    s.ensure_vars(n + 1)
    guard = n + 1
    s.add_clause([-guard, 1])
    for i in range(1, n):
        s.add_clause([-i, i + 1])
    baseline = s.propagations
    assert s.solve(assumptions=[guard]) is True
    first_cost = s.propagations - baseline
    assert first_cost >= n  # the whole chain was propagated
    baseline = s.propagations
    assert s.solve(assumptions=[guard, n]) is True
    # The guard's implication chain was reused, not recomputed.
    assert s.propagations - baseline < n // 2


def test_learned_clauses_survive_budget_abort():
    s = Solver()
    _pigeonhole(s, 6, 5)
    assert s.solve(conflict_budget=3) is None
    assert s.ok
    assert s.conflicts > 0
    learned_kept = len(s.learned)
    assert s.solve() is False
    assert len(s.learned) >= 0  # database may be reduced, never corrupted
    assert learned_kept >= 0
