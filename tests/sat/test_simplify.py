"""CNF preprocessing tests: equisatisfiability against brute force."""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.sat import Cnf, Solver
from repro.sat.simplify import simplify

from .test_solver import brute_force_sat, random_cnf


def make_cnf(num_vars, clauses):
    cnf = Cnf(num_vars)
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


def test_unit_propagation_chain():
    cnf = make_cnf(3, [[1], [-1, 2], [-2, 3]])
    result = simplify(cnf)
    assert not result.unsat
    assert result.assignment == {1: True, 2: True, 3: True}
    assert len(result.cnf) == 0
    assert result.stats["units"] >= 1


def test_unit_conflict_detected():
    cnf = make_cnf(1, [[1], [-1]])
    result = simplify(cnf)
    assert result.unsat


def test_pure_literal_elimination():
    cnf = make_cnf(3, [[1, 2], [1, 3], [-2, 3]])
    result = simplify(cnf)
    assert not result.unsat
    # Variable 1 appears only positively: fixed true, clauses melt away.
    assert result.assignment.get(1) is True
    assert result.stats["pures"] >= 1


def test_subsumption():
    from repro.sat.simplify import _subsume

    clauses, subsumed, _ = _subsume([[1, 2], [1, 2, 3], [1, 2, -3]])
    assert subsumed == 2
    assert clauses == [[1, 2]]


def test_self_subsuming_resolution():
    from repro.sat.simplify import _subsume

    # (a | b) and (a | -b | c): the second strengthens to (a | c).
    clauses, _, strengthened = _subsume([[1, 2], [1, -2, 3]])
    assert strengthened == 1
    assert sorted(map(sorted, clauses)) == [[1, 2], [1, 3]]


def test_simplify_pipeline_handles_mixed_case():
    # No pures, no units: subsumption inside simplify() itself.
    cnf = make_cnf(3, [[1, 2], [1, 2, 3], [-1, -3], [-2, 3]])
    result = simplify(cnf)
    assert not result.unsat
    assert result.stats["subsumed"] >= 1


@settings(max_examples=120, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_equisatisfiable_with_brute_force(seed):
    rng = random.Random(seed)
    num_vars = rng.randint(1, 7)
    clauses = random_cnf(rng, num_vars, rng.randint(1, 20))
    cnf = make_cnf(num_vars, clauses)
    result = simplify(cnf)
    expected = brute_force_sat(num_vars, clauses)
    if result.unsat:
        assert expected is None
        return
    solver = Solver()
    solver.ensure_vars(num_vars)
    ok = solver.add_cnf(result.cnf)
    verdict = solver.solve() if ok else False
    assert verdict == (expected is not None)
    if verdict:
        # A model of the reduced formula extended with the fixed assignment
        # must satisfy the original clauses.
        model = {v: solver.model().get(v, False)
                 for v in range(1, num_vars + 1)}
        model.update(result.assignment)
        for clause in clauses:
            assert any(model[abs(l)] == (l > 0) for l in clause), clause


def test_tseitin_encoding_shrinks():
    """Simplification pays off on the engines' Tseitin output."""
    from repro.sat.tseitin import TseitinEncoder
    from ..netlist.helpers import counter_circuit

    circuit = counter_circuit(4)
    enc = TseitinEncoder()
    frame = enc.encode_frame(circuit)
    # Fix the initial state: lots of unit propagation follows.
    for net, reg in circuit.registers.items():
        enc.add_clause([frame[net] if reg.init else -frame[net]])
    result = simplify(enc.cnf)
    assert not result.unsat
    assert len(result.cnf) < len(enc.cnf)
