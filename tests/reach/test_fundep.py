"""Register correspondence and functional dependency tests."""

from repro.bdd import BddManager
from repro.netlist import Circuit, GateType, build_product
from repro.reach import (
    TransitionSystem,
    functional_dependencies,
    reduce_by_register_correspondence,
    register_correspondence,
    symbolic_reachability,
)
from repro.reach.explicit import explicit_check_equivalence

from ..netlist.helpers import counter_circuit, random_sequential_circuit, toggle_circuit


def test_self_product_registers_all_correspond():
    c = toggle_circuit()
    product = build_product(c, c.copy())
    mapping, _ = register_correspondence(product.circuit)
    reps = {rep for rep, inv in mapping.values()}
    assert len(reps) == 1
    assert all(not inv for _, inv in mapping.values())


def test_antivalent_registers_detected():
    c = Circuit("anti")
    c.add_input("x")
    c.add_register("p", "x", init=False)
    c.add_gate("nx", GateType.NOT, ["x"])
    c.add_register("q", "nx", init=True)  # q == NOT p in every reachable state
    c.add_gate("o", GateType.XOR, ["p", "q"])
    c.add_output("o")
    mapping, _ = register_correspondence(c)
    rep_p, inv_p = mapping["p"]
    rep_q, inv_q = mapping["q"]
    assert rep_p == rep_q
    assert inv_p != inv_q


def test_unrelated_registers_not_merged():
    c = Circuit("sep")
    c.add_input("x")
    c.add_input("y")
    c.add_register("p", "x", init=False)
    c.add_register("q", "y", init=False)
    c.add_gate("o", GateType.AND, ["p", "q"])
    c.add_output("o")
    mapping, _ = register_correspondence(c)
    assert mapping["p"][0] != mapping["q"][0]


def test_initially_equal_but_diverging_split():
    c = Circuit("div")
    c.add_input("x")
    c.add_register("p", "x", init=False)
    c.add_gate("nx", GateType.NOT, ["x"])
    c.add_register("q", "nx", init=False)  # same init, different update
    c.add_gate("o", GateType.OR, ["p", "q"])
    c.add_output("o")
    mapping, _ = register_correspondence(c)
    assert mapping["p"][0] != mapping["q"][0]


def test_correspondence_needs_fixpoint_iterations():
    # Two shift chains fed by the same input: pairwise equivalence of the
    # deeper stages depends on equivalence of the earlier stages.
    c = Circuit("chains")
    c.add_input("x")
    c.add_register("a1", "x", init=False)
    c.add_register("a2", "a1", init=False)
    c.add_register("b1", "x", init=False)
    c.add_register("b2", "b1", init=False)
    c.add_gate("o", GateType.XOR, ["a2", "b2"])
    c.add_output("o")
    mapping, _ = register_correspondence(c)
    assert mapping["a1"][0] == mapping["b1"][0]
    assert mapping["a2"][0] == mapping["b2"][0]
    assert mapping["a1"][0] != mapping["a2"][0]


def test_reduce_by_register_correspondence_halves_self_product():
    c = counter_circuit(3)
    product = build_product(c, c.copy(), match_outputs="order")
    reduced, merged, _ = reduce_by_register_correspondence(product)
    assert merged == 3
    assert reduced.num_registers == 3
    # Reduction preserves the equivalence verdict.
    oracle = explicit_check_equivalence(product)
    assert oracle.proved


def test_reduce_keeps_behavior_of_outputs():
    c = random_sequential_circuit(9, n_inputs=2, n_regs=3, n_gates=8)
    product = build_product(c, c.copy(), match_outputs="order")
    reduced, merged, _ = reduce_by_register_correspondence(product)
    assert merged >= 3
    from repro.netlist import SequentialSimulator

    sim_a = SequentialSimulator(product.circuit, width=32, seed=7)
    sim_b = SequentialSimulator(reduced, width=32, seed=7)
    sig_a = sim_a.run(8)
    sig_b = sim_b.run(8)
    for s_out, i_out in product.output_pairs:
        assert sig_a[s_out] == sig_a[i_out]
        assert sig_b[s_out] == sig_b[i_out]


def test_functional_dependencies_on_reached_set():
    # b always equals a; c counts independently.
    c = Circuit("dep")
    c.add_input("x")
    c.add_register("a", "x", init=False)
    c.add_register("b", "x", init=False)
    c.add_gate("o", GateType.XNOR, ["a", "b"])
    c.add_output("o")
    ts = TransitionSystem(c)
    reached, _, _ = symbolic_reachability(ts)
    deps = functional_dependencies(ts.manager, reached,
                                   ts.state_var_ids())
    # In the reached set {00, 11} each variable determines the other.
    assert set(deps) == ts.state_var_ids()
    mgr = ts.manager
    a_var = ts.cur_id["a"]
    b_var = ts.cur_id["b"]
    assert deps[a_var] == mgr.var_edge(b_var)
    assert deps[b_var] == mgr.var_edge(a_var)


def test_functional_dependencies_none_when_independent():
    mgr = BddManager()
    a = mgr.add_var("a")
    b = mgr.add_var("b")
    full = mgr.true  # all four states reachable
    deps = functional_dependencies(mgr, full,
                                   {mgr.var_of(a), mgr.var_of(b)})
    assert deps == {}
