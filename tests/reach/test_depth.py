"""Sequential depth analysis tests."""

from repro.reach.depth import (
    depth_report,
    sequential_depth_explicit,
    sequential_depth_symbolic,
)

from ..netlist.helpers import counter_circuit, toggle_circuit


def test_counter_depth_is_two_to_the_bits_minus_one():
    c = counter_circuit(4)
    assert sequential_depth_explicit(c) == 15
    depth, exact = sequential_depth_symbolic(c)
    assert (depth, exact) == (15, True)


def test_toggle_depth():
    c = toggle_circuit()
    assert sequential_depth_explicit(c) == 1
    depth, exact = sequential_depth_symbolic(c)
    assert (depth, exact) == (1, True)


def test_symbolic_budget_gives_lower_bound():
    c = counter_circuit(6)
    depth, exact = sequential_depth_symbolic(c, max_iterations=10)
    assert depth == 10
    assert exact is False


def test_depth_report():
    c = counter_circuit(3)
    report = depth_report(c)
    assert report["registers"] == 3
    assert report["depth"] == 7
    assert report["depth_exact"] is True


def test_suite_deep_rows_are_actually_deep():
    """The generated s208-family rows must have the deep state space that
    defeats traversal in Table 1."""
    from repro.circuits import row_by_name

    spec = row_by_name("s208").spec()
    depth, exact = sequential_depth_symbolic(spec, max_iterations=300)
    assert depth >= 255  # the 8-bit fraction counter dominates
