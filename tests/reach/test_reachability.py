"""Cross-validation of symbolic reachability against the explicit oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ResourceBudgetExceeded, VerificationError
from repro.netlist import Circuit, GateType, build_product
from repro.reach import (
    TransitionSystem,
    approximate_reachable,
    explicit_reachable,
    symbolic_reachability,
)

from ..netlist.helpers import counter_circuit, random_sequential_circuit, toggle_circuit


def symbolic_state_set(circuit, ts=None):
    """(manager, reached_bdd, ts) after full symbolic reachability."""
    if ts is None:
        ts = TransitionSystem(circuit)
    reached, rings, iterations = symbolic_reachability(ts)
    return ts, reached, iterations


def states_of_bdd(ts, reached):
    """Enumerate the state tuples of a reached-set BDD (small circuits)."""
    import itertools

    mgr = ts.manager
    regs = list(ts.circuit.registers)
    result = set()
    for bits in itertools.product([False, True], repeat=len(regs)):
        env = {ts.cur_id[r]: b for r, b in zip(regs, bits)}
        # Fill remaining variables arbitrarily (reached depends only on cur).
        full_env = {v: False for v in range(mgr.num_vars)}
        full_env.update(env)
        if mgr.evaluate(reached, full_env):
            result.add(bits)
    return result


def test_counter_reachable_states_exact():
    c = counter_circuit(3)
    explicit, depth = explicit_reachable(c)
    assert len(explicit) == 8
    ts, reached, iterations = symbolic_state_set(c)
    assert states_of_bdd(ts, reached) == explicit
    # BFS depth: with enable input, each step adds one new count value.
    assert iterations == 8


def test_toggle_reachable():
    c = toggle_circuit()
    explicit, _ = explicit_reachable(c)
    assert explicit == {(False,), (True,)}
    ts, reached, _ = symbolic_state_set(c)
    assert states_of_bdd(ts, reached) == explicit


def test_unreachable_state_excluded():
    # Register pair always loaded with identical values: states 01/10 never.
    c = Circuit("twin")
    c.add_input("x")
    c.add_register("a", "x", init=False)
    c.add_register("b", "x", init=False)
    c.add_gate("o", GateType.XNOR, ["a", "b"])
    c.add_output("o")
    explicit, _ = explicit_reachable(c)
    assert explicit == {(False, False), (True, True)}
    ts, reached, _ = symbolic_state_set(c)
    assert states_of_bdd(ts, reached) == explicit


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_symbolic_matches_explicit_random(seed):
    circuit = random_sequential_circuit(seed, n_inputs=2, n_regs=4, n_gates=8)
    explicit, _ = explicit_reachable(circuit)
    ts, reached, _ = symbolic_state_set(circuit)
    assert states_of_bdd(ts, reached) == explicit


def test_sat_count_of_reached_matches():
    c = counter_circuit(4)
    explicit, _ = explicit_reachable(c)
    ts, reached, _ = symbolic_state_set(c)
    mgr = ts.manager
    count = mgr.sat_count(reached) // (2 ** (mgr.num_vars - len(ts.cur_id)))
    assert count == len(explicit)


def test_iteration_budget():
    c = counter_circuit(6)
    ts = TransitionSystem(c)
    with pytest.raises(ResourceBudgetExceeded):
        symbolic_reachability(ts, max_iterations=3)


def test_explicit_budgets():
    c = counter_circuit(4)
    with pytest.raises(ResourceBudgetExceeded):
        explicit_reachable(c, max_states=3)
    wide = Circuit("wide")
    for i in range(15):
        wide.add_input("x{}".format(i))
    wide.add_gate("o", GateType.OR, ["x0", "x1"])
    wide.add_output("o")
    with pytest.raises(VerificationError):
        explicit_reachable(wide)


def test_image_of_initial_state():
    c = toggle_circuit()
    ts = TransitionSystem(c)
    mgr = ts.manager
    init = ts.initial_states()
    image = ts.image(init)
    # From q=0, en arbitrary: next q in {0, 1} -> image is all states.
    assert image == mgr.true or states_of_bdd(ts, image) == {(False,), (True,)}


def test_successor_constraint():
    c = toggle_circuit()
    ts = TransitionSystem(c)
    mgr = ts.manager
    # Transition into q=1 requires en XOR q = 1.
    constraint = ts.successor_constraint({"q": True})
    en = ts.in_id["en"]
    q = ts.cur_id["q"]
    assert mgr.evaluate(constraint, {en: True, q: False,
                                     ts.nxt_id["q"]: False})
    assert not mgr.evaluate(constraint, {en: False, q: False,
                                         ts.nxt_id["q"]: False})


# ------------------------------------------------------------- approximation


def test_approx_is_superset_of_exact():
    c = Circuit("twin2")
    c.add_input("x")
    c.add_register("a", "x", init=False)
    c.add_register("b", "x", init=False)
    c.add_register("cnt", "nc", init=False)
    c.add_gate("nc", GateType.XOR, ["cnt", "a"])
    c.add_gate("o", GateType.XNOR, ["a", "b"])
    c.add_output("o")
    c.add_output("cnt")
    ts = TransitionSystem(c)
    mgr = ts.manager
    exact, _, _ = symbolic_reachability(ts)
    approx = approximate_reachable(ts, max_block=2)
    # exact implies approx
    assert mgr.apply_implies(exact, approx) == mgr.true


def test_approx_block_of_full_size_is_exact():
    c = counter_circuit(3)
    ts = TransitionSystem(c)
    mgr = ts.manager
    exact, _, _ = symbolic_reachability(ts)
    approx = approximate_reachable(ts, max_block=8)
    assert approx == exact


def test_approx_single_var_blocks_still_superset():
    c = counter_circuit(3)
    ts = TransitionSystem(c)
    mgr = ts.manager
    exact, _, _ = symbolic_reachability(ts)
    approx = approximate_reachable(ts, max_block=1)
    assert mgr.apply_implies(exact, approx) == mgr.true


def test_approx_refinement_passes_monotone():
    c = random_sequential_circuit(5, n_inputs=2, n_regs=5, n_gates=10)
    ts = TransitionSystem(c)
    mgr = ts.manager
    one_pass = approximate_reachable(ts, max_block=2, passes=1)
    two_pass = approximate_reachable(ts, max_block=2, passes=2)
    assert mgr.apply_implies(two_pass, one_pass) == mgr.true
