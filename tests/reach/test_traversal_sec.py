"""Traversal-based SEC vs. the explicit oracle, plus counterexample replay."""

from hypothesis import given, settings, strategies as st

from repro.netlist import SequentialSimulator, build_product, bit_parallel_eval
from repro.reach import check_equivalence_traversal, explicit_check_equivalence
from repro.transform import (
    inject_distinguishable_fault,
    optimize,
    retime,
    synthesize,
    xor_reencode,
)

from ..netlist.helpers import counter_circuit, random_sequential_circuit, toggle_circuit


def replay_counterexample(product, trace):
    """Simulate the product machine along the trace; returns True when some
    output pair differs at the final frame (the cex is genuine)."""
    circuit = product.circuit
    state = {name: reg.init for name, reg in circuit.registers.items()}
    values = None
    for frame_inputs in trace.full_sequence():
        env = {net: int(bool(frame_inputs.get(net, False)))
               for net in circuit.inputs}
        env.update({net: int(bool(v)) for net, v in state.items()})
        values = bit_parallel_eval(circuit, env, 1)
        state = {
            name: bool(values[reg.data_in])
            for name, reg in circuit.registers.items()
        }
    return any(
        values[s_out] != values[i_out]
        for s_out, i_out in product.output_pairs
    )


def test_identical_circuits_equivalent():
    c = toggle_circuit()
    product = build_product(c, c.copy())
    result = check_equivalence_traversal(product)
    assert result.proved
    assert result.iterations >= 1
    assert result.peak_nodes > 0


def test_retimed_counter_equivalent():
    spec = counter_circuit(4)
    impl = retime(spec, moves=3, seed=1)
    product = build_product(spec, impl, match_outputs="order")
    result = check_equivalence_traversal(product)
    assert result.proved
    oracle = explicit_check_equivalence(product)
    assert oracle.proved


def test_mutated_counter_inequivalent_with_replayable_cex():
    spec = counter_circuit(3)
    impl, _ = inject_distinguishable_fault(spec, seed=3)
    product = build_product(spec, impl, match_outputs="order")
    result = check_equivalence_traversal(product)
    assert result.refuted
    assert result.counterexample is not None
    assert replay_counterexample(product, result.counterexample)
    oracle = explicit_check_equivalence(product)
    assert oracle.refuted
    assert replay_counterexample(product, oracle.counterexample)


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_traversal_matches_oracle_on_synthesized(seed):
    spec = random_sequential_circuit(seed, n_inputs=2, n_regs=3, n_gates=8)
    impl = synthesize(spec, retime_moves=2, optimize_level=2, seed=seed)
    product = build_product(spec, impl, match_outputs="order")
    result = check_equivalence_traversal(product)
    oracle = explicit_check_equivalence(product)
    assert oracle.proved  # synthesize preserves behaviour by construction
    assert result.proved


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_traversal_matches_oracle_on_mutations(seed):
    spec = random_sequential_circuit(seed, n_inputs=2, n_regs=3, n_gates=8)
    impl, _ = inject_distinguishable_fault(spec, seed=seed)
    product = build_product(spec, impl, match_outputs="order")
    result = check_equivalence_traversal(product)
    oracle = explicit_check_equivalence(product)
    assert result.equivalent == oracle.equivalent
    if result.refuted:
        assert replay_counterexample(product, result.counterexample)


def test_traversal_without_register_correspondence():
    spec = counter_circuit(3)
    impl = optimize(spec, level=2, seed=2)
    product = build_product(spec, impl, match_outputs="order")
    with_rc = check_equivalence_traversal(product,
                                          use_register_correspondence=True)
    without_rc = check_equivalence_traversal(product,
                                             use_register_correspondence=False)
    assert with_rc.proved and without_rc.proved
    assert with_rc.details["register_classes_merged"] > 0
    assert without_rc.details["register_classes_merged"] == 0


def test_traversal_node_budget_abort():
    spec = counter_circuit(6)
    impl = retime(spec, moves=4, seed=5)
    product = build_product(spec, impl, match_outputs="order")
    result = check_equivalence_traversal(product, node_limit=40,
                                         use_register_correspondence=False)
    assert result.inconclusive
    assert "aborted" in result.details


def test_traversal_iteration_budget_abort():
    spec = counter_circuit(8)
    product = build_product(spec, spec.copy(), match_outputs="order")
    result = check_equivalence_traversal(product, max_iterations=2)
    assert result.inconclusive


def test_xor_reencoded_equivalent():
    spec = counter_circuit(3)
    impl = xor_reencode(spec, pairs=1, seed=4)
    product = build_product(spec, impl, match_outputs="order")
    result = check_equivalence_traversal(product)
    assert result.proved
