"""End-to-end daemon acceptance test: a real ``repro-sec serve`` subprocess.

Covers the full networked lifecycle the subsystem promises: boot on an
ephemeral port, concurrent submissions over HTTP, live SSE progress
(including ``refinement_round`` ticks), mid-run cancellation, cache-served
reruns, SIGKILL crash + restart with the persisted queue resuming, and a
graceful SIGTERM shutdown that leaves no orphaned worker processes.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.client import ServerClient

from .helpers import spinner_payload

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
SRC_DIR = os.path.join(REPO_ROOT, "src")


class Daemon:
    """One ``repro-sec serve`` subprocess in its own process group."""

    def __init__(self, base_dir, tag, workers=2, cache=True):
        self.store_dir = os.path.join(base_dir, "store")
        self.cache_dir = os.path.join(base_dir, "cache")
        self.ready_file = os.path.join(base_dir, "ready-{}.json".format(tag))
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--workers", str(workers), "--quiet",
            "--store-dir", self.store_dir,
            "--ready-file", self.ready_file,
        ]
        if cache:
            argv += ["--cache-dir", self.cache_dir]
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            argv, env=env, cwd=base_dir, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
        self.pgid = os.getpgid(self.proc.pid)
        self.url = self._await_ready()

    def _await_ready(self, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise AssertionError(
                    "daemon died during startup:\n"
                    + self.proc.stderr.read().decode())
            try:
                with open(self.ready_file) as fh:
                    return json.load(fh)["url"]
            except (OSError, ValueError, KeyError):
                time.sleep(0.05)
        raise AssertionError("daemon never wrote its ready file")

    def sigkill(self):
        self.proc.kill()
        self.proc.wait(timeout=10)

    def sigterm(self, timeout=30):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def group_alive(self):
        """True while any process of the daemon's group still exists."""
        try:
            os.killpg(self.pgid, 0)
            return True
        except ProcessLookupError:
            return False

    def await_group_exit(self, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.group_alive():
                return
            time.sleep(0.1)
        raise AssertionError("daemon process group did not exit "
                             "(orphaned workers?)")

    def cleanup(self):
        try:
            os.killpg(self.pgid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        if self.proc.poll() is None:
            self.proc.wait(timeout=10)
        if self.proc.stderr:
            self.proc.stderr.close()


@pytest.fixture
def daemon_factory(tmp_path):
    daemons = []

    def start(tag, **kwargs):
        daemon = Daemon(str(tmp_path), tag, **kwargs)
        daemons.append(daemon)
        return daemon

    try:
        yield start
    finally:
        for daemon in daemons:
            daemon.cleanup()


def wait_state(client, job_id, state, timeout=60.0, poll=0.1, daemon=None):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if daemon is not None and daemon.proc.poll() is not None:
            raise AssertionError("daemon exited with {} while job {} waited "
                                 "for {!r}".format(daemon.proc.returncode,
                                                   job_id, state))
        record = client.job(job_id)
        if record["state"] == state:
            return record
        time.sleep(poll)
    raise AssertionError("job {} never reached state {!r} (last: {!r})".format(
        job_id, state, record["state"]))


def test_daemon_lifecycle(daemon_factory):
    daemon = daemon_factory("first", workers=2)
    client = ServerClient(daemon.url, timeout=30.0)
    assert client.healthz()["status"] == "ok"

    # Concurrent submissions: an effectively-endless BMC spinner plus a
    # real suite verification, racing on the two workers.
    spinner_id = client.submit_payload(spinner_payload())
    suite_id = client.submit_suite("s386", method="sat_sweep")
    wait_state(client, spinner_id, "running", daemon=daemon)

    # Live SSE stream for the suite job: progress ticks, then the verdict.
    seen = []
    for event in client.events(suite_id, timeout=120):
        seen.append(event)
        if event.get("type") == "done":
            break
    types = [e["type"] for e in seen]
    assert "job_submitted" in types
    assert any(e["type"] == "job_progress"
               and e.get("data", {}).get("kind") == "refinement_round"
               for e in seen), "no refinement_round progress over SSE"
    assert types[-1] == "done"
    final = seen[-1]["record"]
    assert final["state"] == "done"
    assert final["result"]["result"]["equivalent"] is True

    # The spinner is still chewing through BMC depths: cancel it mid-run.
    assert client.job(spinner_id)["state"] == "running"
    client.cancel(spinner_id)
    record = wait_state(client, spinner_id, "cancelled")
    assert record["result"]["result"]["equivalent"] is None

    # A repeat submission of the suite job is served from the cache.
    rerun_id = client.submit_suite("s386", method="sat_sweep")
    record = wait_state(client, rerun_id, "done")
    assert record["cached"] is True
    stats = client.stats()
    assert stats["cache"]["hits"] >= 1
    assert stats["jobs"]["done"] == 2

    # Graceful shutdown: exit code 0 and the whole group is gone.
    assert daemon.sigterm() == 0
    daemon.await_group_exit()


def test_sigkill_restart_resumes_persisted_queue(daemon_factory):
    daemon = daemon_factory("crash", workers=2, cache=False)
    client = ServerClient(daemon.url, timeout=30.0)

    # Fill both workers with spinners; a third job waits in the queue.
    spin_a = client.submit_payload(spinner_payload("spin-a"))
    spin_b = client.submit_payload(spinner_payload("spin-b"))
    queued = client.submit_payload(spinner_payload("queued-spin"))
    wait_state(client, spin_a, "running")
    wait_state(client, spin_b, "running")
    assert client.job(queued)["state"] == "queued"

    # SIGKILL: no graceful teardown, no atexit — the crash case.  The
    # forked workers notice the reparenting (os.getppid changes) at their
    # next cancel poll and exit on their own; nothing is left behind.
    daemon.sigkill()
    daemon.await_group_exit()

    # Restart over the same store: the two running jobs were re-queued
    # with an incremented requeue count, the queued job is still queued.
    daemon2 = daemon_factory("restart", workers=2, cache=False)
    client = ServerClient(daemon2.url, timeout=30.0)
    for job_id in (spin_a, spin_b):
        record = client.job(job_id)
        assert record["requeues"] == 1
        assert record["state"] in ("queued", "running")
    assert client.job(queued)["state"] in ("queued", "running")

    # The resumed queue is live: cancel everything and watch it drain.
    for job_id in (spin_a, spin_b, queued):
        client.cancel(job_id)
        wait_state(client, job_id, "cancelled")
    stats = client.stats()
    assert stats["jobs"]["cancelled"] == 3

    assert daemon2.sigterm() == 0
    daemon2.await_group_exit()
