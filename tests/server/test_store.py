"""Persistence tests for the daemon's on-disk job store."""

import json
import os

from repro.server import (CANCELLED, DONE, QUEUED, RUNNING, JobRecord,
                          JobStore)


def make_payload(name="tiny"):
    return {"name": name, "method": "sat_sweep", "suite": "s27",
            "options": {}, "match_inputs": "name", "match_outputs": "order",
            "tags": {}, "optimize_level": 2}


def test_create_get_roundtrip(tmp_path):
    store = JobStore(tmp_path)
    record = store.create(make_payload(), client="127.0.0.1")
    assert record.state == QUEUED
    assert record.name == "tiny"
    assert not record.terminal

    reloaded = JobStore(tmp_path).get(record.id)
    assert reloaded is not None
    assert reloaded.payload == record.payload
    assert reloaded.client == "127.0.0.1"
    assert reloaded.submitted_at == record.submitted_at


def test_ids_are_unique_and_ordered(tmp_path):
    store = JobStore(tmp_path)
    records = [store.create(make_payload(str(i))) for i in range(5)]
    assert len({r.id for r in records}) == 5
    assert [r.id for r in store.all()] == [r.id for r in records]


def test_state_transitions_persist(tmp_path):
    store = JobStore(tmp_path)
    record = store.create(make_payload())
    record.state = DONE
    record.result = {"equivalent": True}
    store.save(record)

    reloaded = JobStore(tmp_path).get(record.id)
    assert reloaded.state == DONE
    assert reloaded.terminal
    assert reloaded.result == {"equivalent": True}


def test_recover_requeues_running_jobs(tmp_path):
    store = JobStore(tmp_path)
    running = store.create(make_payload("was-running"))
    running.state = RUNNING
    store.save(running)
    done = store.create(make_payload("was-done"))
    done.state = DONE
    store.save(done)
    queued = store.create(make_payload("still-queued"))

    fresh = JobStore(tmp_path)
    recovered = fresh.recover()
    assert [r.id for r in recovered] == [running.id]
    assert fresh.get(running.id).state == QUEUED
    assert fresh.get(running.id).requeues == 1
    assert fresh.get(done.id).state == DONE
    assert [r.id for r in fresh.queued()] == [running.id, queued.id]


def test_corrupt_files_are_skipped(tmp_path):
    store = JobStore(tmp_path)
    good = store.create(make_payload())
    jobs_dir = os.path.join(str(tmp_path), "jobs")
    with open(os.path.join(jobs_dir, "zzz-corrupt.json"), "w") as handle:
        handle.write("{not json")

    fresh = JobStore(tmp_path)
    assert [r.id for r in fresh.all()] == [good.id]


def test_delete_and_counts(tmp_path):
    store = JobStore(tmp_path)
    a = store.create(make_payload("a"))
    b = store.create(make_payload("b"))
    b.state = CANCELLED
    store.save(b)
    counts = store.counts()
    assert counts[QUEUED] == 1 and counts[CANCELLED] == 1

    store.delete(a.id)
    assert store.get(a.id) is None
    assert JobStore(tmp_path).get(a.id) is None
    counts = store.counts()
    assert counts[QUEUED] == 0 and counts[CANCELLED] == 1


def test_public_dict_redacts_bench_bodies(tmp_path):
    payload = make_payload()
    del payload["suite"]
    payload["spec_bench"] = "INPUT(a)\n" * 50
    payload["impl_bench"] = "INPUT(b)\n" * 50
    store = JobStore(tmp_path)
    record = store.create(payload)
    public = record.public_dict()
    assert "INPUT" not in json.dumps(public)
    assert "chars" in public["payload"]["spec_bench"]
    # but the store itself keeps the full text
    assert "INPUT" in JobStore(tmp_path).get(record.id).payload["spec_bench"]
