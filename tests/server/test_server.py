"""In-process daemon tests: real sockets, real worker processes.

The server runs on a background thread (:class:`helpers.ServerThread`)
while the test drives it synchronously through :class:`ServerClient`.
"""

import pytest

from repro.client import ServerClient, ServerError, job_payload
from repro.server import validate_payload, HttpError

from .helpers import ServerThread, spinner_payload, tiny_pair


def client_for(server, **kwargs):
    kwargs.setdefault("retries", 0)
    kwargs.setdefault("timeout", 10.0)
    return ServerClient(server.url(), **kwargs)


# -- payload validation (no server needed) ----------------------------------

def test_validate_rejects_unknown_method():
    with pytest.raises(HttpError) as excinfo:
        validate_payload({"suite": "s386", "method": "magic"})
    assert excinfo.value.status == 400


def test_validate_requires_exactly_one_source():
    with pytest.raises(HttpError):
        validate_payload({"method": "sat_sweep"})  # neither
    with pytest.raises(HttpError):
        validate_payload({"suite": "s386", "spec_bench": "x",
                          "impl_bench": "y"})  # both


def test_validate_rejects_unknown_suite_row():
    with pytest.raises(HttpError) as excinfo:
        validate_payload({"suite": "no_such_circuit"})
    assert excinfo.value.status == 400
    assert "no_such_circuit" in excinfo.value.message


def test_validate_normalizes_defaults():
    normalized = validate_payload({"suite": "s386"})
    assert normalized["name"] == "s386"
    assert normalized["method"] == "van_eijk"
    assert normalized["match_outputs"] == "order"
    assert normalized["optimize_level"] == 2


# -- the live daemon --------------------------------------------------------

def test_submit_bench_pair_to_verdict(tmp_path):
    spec, impl = tiny_pair()
    with ServerThread(store_dir=tmp_path, workers=1) as server:
        client = client_for(server)
        assert client.healthz()["status"] == "ok"
        job_id = client.submit(spec, impl, name="tiny", method="sat_sweep")
        record = client.wait(job_id, poll=0.05, timeout=60)
        assert record["state"] == "done"
        assert record["result"]["result"]["equivalent"] is True
        assert record["cached"] is False
        # the payload in the public record is redacted
        assert "chars" in record["payload"]["spec_bench"]

        result = client.result(job_id)
        assert result.verdict is True
        assert result.result.equivalent is True


def test_submit_k_induction_job(tmp_path):
    spec, impl = tiny_pair()
    with ServerThread(store_dir=tmp_path, workers=1) as server:
        client = client_for(server)
        job_id = client.submit(spec, impl, name="tiny-kind",
                               method="k_induction",
                               options={"max_depth": 8})
        record = client.wait(job_id, poll=0.05, timeout=60)
        assert record["state"] == "done"
        result = record["result"]["result"]
        assert result["equivalent"] is True
        assert result["method"] == "k_induction"
        assert result["details"]["solver_stats"]["solver_constructions"] == 1


def test_cache_serves_repeat_submissions(tmp_path):
    spec, impl = tiny_pair()
    with ServerThread(store_dir=tmp_path / "store",
                      cache_dir=str(tmp_path / "cache"),
                      workers=1) as server:
        client = client_for(server)
        first = client.submit(spec, impl, name="tiny", method="sat_sweep")
        assert client.wait(first, poll=0.05, timeout=60)["cached"] is False
        second = client.submit(spec, impl, name="tiny-again",
                               method="sat_sweep")
        record = client.wait(second, poll=0.05, timeout=60)
        assert record["state"] == "done"
        assert record["cached"] is True
        assert record["result"]["result"]["equivalent"] is True

        stats = client.stats()
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["hit_rate"] > 0


def test_submit_suite_row_and_sse_stream(tmp_path):
    with ServerThread(store_dir=tmp_path, workers=1) as server:
        client = client_for(server)
        job_id = client.submit_suite("s386", method="sat_sweep")
        record = client.wait(job_id, poll=0.05, timeout=120)
        assert record["state"] == "done"
        assert record["result"]["result"]["equivalent"] is True

        # Replay the finished job's stream: history then the done event.
        events = list(client.events(job_id))
        types = [e["type"] for e in events]
        assert types[0] == "job_submitted"
        assert "job_started" in types
        assert any(e["type"] == "job_progress"
                   and e.get("data", {}).get("kind") == "refinement_round"
                   for e in events)
        assert types[-1] == "done"
        assert events[-1]["record"]["state"] == "done"


def test_server_default_refine_workers_applied(tmp_path):
    """A daemon started with ``refine_workers`` injects it into sat_sweep
    jobs that don't pin their own value — visible in the verdict details."""
    spec, impl = tiny_pair()
    with ServerThread(store_dir=tmp_path, workers=1,
                      refine_workers=2) as server:
        client = client_for(server)
        job_id = client.submit(spec, impl, name="tiny", method="sat_sweep")
        record = client.wait(job_id, poll=0.05, timeout=60)
        assert record["state"] == "done"
        result = record["result"]["result"]
        assert result["equivalent"] is True
        assert result["details"]["refine_workers"] == 2
        # Other methods are left alone.
        other = client.submit(spec, impl, name="tiny-ve", method="van_eijk")
        other_record = client.wait(other, poll=0.05, timeout=60)
        assert other_record["state"] == "done"
        assert other_record["result"]["result"]["equivalent"] is True


def test_http_errors(tmp_path):
    with ServerThread(store_dir=tmp_path) as server:
        client = client_for(server)
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/v1/nowhere")
        assert excinfo.value.status == 404
        with pytest.raises(ServerError) as excinfo:
            client.job("j-unknown")
        assert excinfo.value.status == 404
        with pytest.raises(ServerError) as excinfo:
            client._request("DELETE", "/v1/stats")
        assert excinfo.value.status == 405
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/v1/jobs", body={"method": "nope"})
        assert excinfo.value.status == 400
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/v1/jobs", body={"jobs": []})
        assert excinfo.value.status == 400


def test_queue_backpressure_429(tmp_path):
    with ServerThread(store_dir=tmp_path, queue_limit=2) as server:
        client = client_for(server)
        payloads = [spinner_payload("spin-{}".format(i)) for i in range(3)]
        with pytest.raises(ServerError) as excinfo:
            client.submit_payloads(payloads)
        assert excinfo.value.status == 429
        # under the limit is fine
        ids = client.submit_payloads(payloads[:2])
        assert len(ids) == 2
        for job_id in ids:
            client.cancel(job_id)


def test_cancel_queued_and_running(tmp_path):
    with ServerThread(store_dir=tmp_path, workers=1) as server:
        client = client_for(server)
        running_id = client.submit_payload(spinner_payload("running"))
        queued_id = client.submit_payload(spinner_payload("queued"))

        # Wait until the first spinner occupies the only worker.
        deadline_poll = 0
        while client.job(running_id)["state"] != "running":
            deadline_poll += 1
            assert deadline_poll < 600, "spinner never started"
            client.sleep(0.05)
        assert client.job(queued_id)["state"] == "queued"

        # Cancelling a queued job is immediate.
        response = client.cancel(queued_id)
        assert response["state"] == "cancelled"
        assert client.job(queued_id)["state"] == "cancelled"

        # Cancelling the running job goes SIGTERM -> cooperative cancel.
        response = client.cancel(running_id)
        assert response["state"] == "cancelling"
        record = client.wait(running_id, poll=0.05, timeout=60)
        assert record["state"] == "cancelled"
        assert record["result"]["result"]["equivalent"] is None

        # Cancelling a terminal job is a no-op, not an error.
        response = client.cancel(running_id)
        assert response["detail"] == "already terminal"


def test_rate_limit_429(tmp_path):
    with ServerThread(store_dir=tmp_path, rate=0.001, burst=2) as server:
        client = client_for(server)
        client.stats()
        client.stats()
        with pytest.raises(ServerError) as excinfo:
            client.stats()
        assert excinfo.value.status == 429
        # healthz is never throttled
        assert client.healthz()["status"] == "ok"
        assert server.limiter.rejected >= 1


def test_stats_shape(tmp_path):
    with ServerThread(store_dir=tmp_path, workers=1,
                      cache_dir=str(tmp_path / "cache")) as server:
        client = client_for(server)
        spec, impl = tiny_pair()
        job_id = client.submit(spec, impl, name="tiny", method="sat_sweep")
        client.wait(job_id, poll=0.05, timeout=60)
        stats = client.stats()
        assert stats["jobs"]["done"] == 1
        assert stats["workers"]["total"] == 1
        assert stats["queue_limit"] == 64
        assert stats["events"]["published"] > 0
        assert isinstance(stats["solver_stats"], dict)


def test_job_listing(tmp_path):
    spec, impl = tiny_pair()
    with ServerThread(store_dir=tmp_path, workers=1) as server:
        client = client_for(server)
        job_id = client.submit(spec, impl, name="tiny", method="sat_sweep")
        client.wait(job_id, poll=0.05, timeout=60)
        jobs = client.jobs()
        assert [j["id"] for j in jobs] == [job_id]
        assert jobs[0]["name"] == "tiny"
        assert jobs[0]["state"] == "done"


def test_restart_resumes_persisted_queue(tmp_path):
    """Queued jobs survive a stop/start cycle of the daemon."""
    payload = validate_payload(job_payload(*tiny_pair(), name="later",
                                           method="sat_sweep"))
    with ServerThread(store_dir=tmp_path, workers=1) as server:
        client = client_for(server)
        spinner_id = client.submit_payload(spinner_payload())
        later_id = client.submit_payload(payload)
        while client.job(spinner_id)["state"] != "running":
            client.sleep(0.05)
        assert client.job(later_id)["state"] == "queued"
    # Graceful stop re-queues the running spinner on disk.

    with ServerThread(store_dir=tmp_path, workers=1) as server:
        client = client_for(server)
        record = client.job(spinner_id)
        assert record["requeues"] >= 1
        # Don't let the spinner hog the worker: cancel it, then the
        # surviving queued job runs to a verdict.
        client.cancel(spinner_id)
        client.wait(spinner_id, poll=0.05, timeout=60)
        record = client.wait(later_id, poll=0.05, timeout=60)
        assert record["state"] == "done"
        assert record["result"]["result"]["equivalent"] is True
