"""Client-side tests: retry/backoff against a stub server, the
``RemoteScheduler`` adapter against a real in-process daemon."""

import http.server
import json
import threading

import pytest

from repro.client import (RemoteScheduler, ServerClient, ServerError,
                          job_payload, remote_job_result)
from repro.service.events import EventBus, JOB_FINISHED, JOB_QUEUED
from repro.service.job import JobSpec

from .helpers import ServerThread, tiny_pair


class StubHandler(http.server.BaseHTTPRequestHandler):
    """Serves a scripted list of (status, headers, body) responses."""

    script = []
    requests = []

    def _respond(self):
        type(self).requests.append((self.command, self.path))
        if type(self).script:
            status, headers, body = type(self).script.pop(0)
        else:
            status, headers, body = 200, {}, {"ok": True}
        payload = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    do_GET = _respond
    do_POST = _respond
    do_DELETE = _respond

    def log_message(self, *args):
        pass


@pytest.fixture
def stub_server():
    StubHandler.script = []
    StubHandler.requests = []
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), StubHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield "http://127.0.0.1:{}".format(server.server_address[1])
    finally:
        server.shutdown()
        thread.join(timeout=5)


def make_client(url, **kwargs):
    delays = []
    kwargs.setdefault("retries", 3)
    kwargs.setdefault("backoff", 0.125)
    client = ServerClient(url, sleep=delays.append, **kwargs)
    return client, delays


def test_retries_5xx_then_succeeds(stub_server):
    StubHandler.script = [
        (503, {}, {"error": "warming up"}),
        (500, {}, {"error": "hiccup"}),
        (200, {}, {"status": "ok"}),
    ]
    client, delays = make_client(stub_server)
    assert client.healthz() == {"status": "ok"}
    assert len(delays) == 2
    assert delays[1] > delays[0]  # exponential


def test_retry_after_header_is_honoured(stub_server):
    StubHandler.script = [
        (429, {"Retry-After": "3"}, {"error": "queue full"}),
        (200, {}, {"status": "ok"}),
    ]
    client, delays = make_client(stub_server)
    assert client.healthz() == {"status": "ok"}
    assert delays == [3.0]


def test_non_retryable_status_raises_immediately(stub_server):
    StubHandler.script = [(404, {}, {"error": "no such job"})]
    client, delays = make_client(stub_server)
    with pytest.raises(ServerError) as excinfo:
        client.job("j-missing")
    assert excinfo.value.status == 404
    assert "no such job" in str(excinfo.value)
    assert delays == []
    assert len(StubHandler.requests) == 1


def test_exhausted_retries_surface_last_error(stub_server):
    StubHandler.script = [(503, {}, {"error": "down"})] * 4
    client, delays = make_client(stub_server, retries=3)
    with pytest.raises(ServerError) as excinfo:
        client.healthz()
    assert excinfo.value.status == 503
    assert len(delays) == 3
    assert len(StubHandler.requests) == 4


def test_connection_refused_is_retried_then_raised():
    client, delays = make_client("http://127.0.0.1:9", retries=2)
    with pytest.raises(ServerError) as excinfo:
        client.healthz()
    assert excinfo.value.status is None
    assert len(delays) == 2


def test_backoff_is_capped():
    client, _ = make_client("http://127.0.0.1:9", backoff=1.0,
                            backoff_cap=2.5)
    assert client._delay(0, None) == 1.0
    assert client._delay(1, None) == 2.0
    assert client._delay(5, None) == 2.5
    assert client._delay(0, "10") == 10.0
    assert client._delay(0, "garbage") == 1.0


def test_remote_job_result_mapping():
    record = {
        "name": "tiny", "state": "done", "cached": True, "error": None,
        "result": {"name": "j001", "method": "sat_sweep", "cached": False,
                   "attempts": 1, "wall_seconds": 0.5, "error": None,
                   "result": {"equivalent": True, "method": "sat_sweep",
                              "seconds": 0.4, "iterations": 2}},
    }
    result = remote_job_result(record)
    assert result.name == "tiny"          # display name wins over job id
    assert result.cached is True          # server-side cache hit propagates
    assert result.verdict is True

    errored = {"name": "bad", "state": "error", "error": "worker crashed",
               "result": None, "cached": False}
    result = remote_job_result(errored)
    assert result.result is None
    assert result.error == "worker crashed"
    assert result.verdict is None


def test_remote_scheduler_runs_batch(tmp_path):
    spec, impl = tiny_pair()
    jobs = [
        JobSpec("tiny-a", spec, impl, method="sat_sweep",
                match_outputs="order"),
        JobSpec("tiny-b", spec, impl, method="bmc",
                options={"max_depth": 3}, match_outputs="order"),
    ]
    events = []
    bus = EventBus()
    bus.subscribe(events.append)
    with ServerThread(store_dir=tmp_path, workers=2) as server:
        scheduler = RemoteScheduler(server.url(), bus=bus, poll=0.05)
        assert scheduler.run([]) == []
        results = scheduler.run(jobs)

    assert [r.name for r in results] == ["tiny-a", "tiny-b"]
    assert results[0].verdict is True
    assert results[1].verdict is None  # BMC can only refute; depth 3 passes
    assert results[1].error is None

    queued = [e for e in events if e.type == JOB_QUEUED]
    finished = [e for e in events if e.type == JOB_FINISHED]
    assert {e.job for e in queued} == {"tiny-a", "tiny-b"}
    assert {e.job for e in finished} == {"tiny-a", "tiny-b"}
    assert all(e.data.get("remote") for e in queued + finished)


def test_job_payload_roundtrip():
    spec, impl = tiny_pair()
    payload = job_payload(spec, impl, method="sat_sweep",
                          options={"time_limit": 5})
    assert payload["name"] == spec.name
    assert "INPUT" in payload["spec_bench"]
    assert payload["match_outputs"] == "order"
    assert payload["options"] == {"time_limit": 5}
