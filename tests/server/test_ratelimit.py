"""Deterministic token-bucket tests with an injected clock."""

from repro.server import RateLimiter, TokenBucket


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def test_burst_then_throttle():
    limiter = RateLimiter(rate=1.0, burst=3, clock=FakeClock())
    assert [limiter.check("a") for _ in range(3)] == [0.0, 0.0, 0.0]
    wait = limiter.check("a")
    assert wait > 0.0
    assert limiter.rejected == 1


def test_refill_over_time():
    clock = FakeClock()
    limiter = RateLimiter(rate=2.0, burst=2, clock=clock)
    assert limiter.check("a") == 0.0
    assert limiter.check("a") == 0.0
    assert limiter.check("a") > 0.0
    clock.now += 0.5  # 2 tokens/s * 0.5 s = 1 token back
    assert limiter.check("a") == 0.0
    assert limiter.check("a") > 0.0


def test_clients_are_independent():
    limiter = RateLimiter(rate=1.0, burst=1, clock=FakeClock())
    assert limiter.check("a") == 0.0
    assert limiter.check("a") > 0.0
    assert limiter.check("b") == 0.0


def test_disabled_limiter_always_allows():
    limiter = RateLimiter(rate=None, burst=1, clock=FakeClock())
    assert all(limiter.check("a") == 0.0 for _ in range(100))
    assert limiter.rejected == 0


def test_wait_matches_deficit():
    clock = FakeClock()
    bucket = TokenBucket(rate=4.0, burst=1, now=clock.now)
    assert bucket.take(clock.now) == 0.0
    # Bucket is empty; one token at 4/s is 0.25 s away.
    assert abs(bucket.take(clock.now) - 0.25) < 1e-9


def test_tokens_cap_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=2, now=clock.now)
    clock.now += 1000.0
    bucket.take(clock.now)
    assert bucket.tokens <= 2.0


def test_idle_buckets_are_collected():
    clock = FakeClock()
    limiter = RateLimiter(rate=100.0, burst=1, clock=clock, max_idle=10.0)
    for i in range(1100):
        limiter.check("client-{}".format(i))
    clock.now += 100.0
    # Next check triggers GC of everything idle past max_idle.
    for i in range(1100):
        limiter.check("fresh-{}".format(i))
    assert len(limiter._buckets) <= 1200
