"""Shared fixtures for the daemon tests: an in-process server thread.

The daemon normally owns the process's event loop; tests instead run it on
a dedicated thread so the test body can drive the stdlib-`urllib` client
synchronously against real sockets.  Worker processes still fork exactly
as in production.
"""

import asyncio
import threading

from repro.server import VerifyServer

from ..service.helpers import tiny_pair  # noqa: F401  (re-export)


class ServerThread:
    """Context manager: a live :class:`VerifyServer` on a background loop."""

    def __init__(self, **kwargs):
        kwargs.setdefault("host", "127.0.0.1")
        kwargs.setdefault("port", 0)
        kwargs.setdefault("poll_interval", 0.01)
        self.server = VerifyServer(**kwargs)
        self.loop = None
        self.thread = None

    def __enter__(self):
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, name="server-loop",
                                       daemon=True)
        self.thread.start()
        assert started.wait(10), "server failed to start"
        return self.server

    def __exit__(self, *exc_info):
        future = asyncio.run_coroutine_threadsafe(self.server.stop(),
                                                  self.loop)
        future.result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()
        return False


def spinner_payload(name="spinner"):
    """A job that runs ~forever but cancels within milliseconds.

    BMC on an equivalent pair never refutes, so it keeps deepening until
    ``max_depth``; on the tiny pair each depth is milliseconds, so the
    cooperative cancel check fires almost immediately while the total
    runtime is effectively unbounded.
    """
    from repro.client import job_payload

    spec, impl = tiny_pair()
    return job_payload(spec, impl, name=name, method="bmc",
                       options={"max_depth": 1000000},
                       match_outputs="order")
