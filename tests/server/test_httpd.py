"""Unit tests for the stdlib HTTP/SSE plumbing (no sockets needed)."""

import asyncio
import json

import pytest

from repro.server import HttpError, parse_sse_stream
from repro.server.httpd import (Request, error_response, json_response,
                                read_request, response_bytes)


def parse(raw, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


def test_parses_request_with_body():
    body = json.dumps({"x": 1}).encode()
    raw = (b"POST /v1/jobs?limit=3&flag HTTP/1.1\r\n"
           b"Content-Type: application/json\r\n"
           b"Content-Length: " + str(len(body)).encode() + b"\r\n"
           b"\r\n" + body)
    request = parse(raw)
    assert request.method == "POST"
    assert request.path == "/v1/jobs"
    assert request.query == {"limit": "3", "flag": ""}
    assert request.headers["content-type"] == "application/json"
    assert request.json() == {"x": 1}


def test_clean_eof_returns_none():
    assert parse(b"") is None


def test_malformed_request_line_is_400():
    with pytest.raises(HttpError) as excinfo:
        parse(b"NONSENSE\r\n\r\n")
    assert excinfo.value.status == 400


def test_bad_http_version_is_400():
    with pytest.raises(HttpError) as excinfo:
        parse(b"GET / SPDY/99\r\n\r\n")
    assert excinfo.value.status == 400


def test_oversized_body_is_413():
    raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100
    with pytest.raises(HttpError) as excinfo:
        parse(raw, max_body=10)
    assert excinfo.value.status == 413


def test_truncated_body_is_400():
    raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"
    with pytest.raises(HttpError) as excinfo:
        parse(raw)
    assert excinfo.value.status == 400


def test_chunked_encoding_is_501():
    raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
    with pytest.raises(HttpError) as excinfo:
        parse(raw)
    assert excinfo.value.status == 501


def test_non_json_body_raises_400():
    raw = b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\n{nope"
    request = parse(raw)
    with pytest.raises(HttpError) as excinfo:
        request.json()
    assert excinfo.value.status == 400


def test_response_bytes_shape():
    raw = response_bytes(200, b"hi", content_type="text/plain",
                         headers={"X-Extra": "1"})
    head, _, body = raw.partition(b"\r\n\r\n")
    assert body == b"hi"
    lines = head.decode().split("\r\n")
    assert lines[0] == "HTTP/1.1 200 OK"
    assert "Content-Length: 2" in lines
    assert "Connection: close" in lines
    assert "X-Extra: 1" in lines


def test_json_and_error_responses():
    raw = json_response(202, {"id": "j1"})
    assert b'{"id": "j1"}' in raw

    raw = error_response(HttpError(429, "slow down",
                                   headers={"Retry-After": "2"}))
    assert raw.startswith(b"HTTP/1.1 429")
    assert b"Retry-After: 2" in raw
    assert b"slow down" in raw


def test_parse_sse_stream():
    lines = [
        ": keep-alive\n",
        "event: job_progress\n",
        "data: {\"depth\": 1}\n",
        "\n",
        "data: plain\n",
        "data: second-line\n",
        "\n",
        ": another heartbeat\n",
        "event: done\n",
        "data: {}\n",
        "\n",
    ]
    events = list(parse_sse_stream(lines))
    assert events == [
        ("job_progress", '{"depth": 1}'),
        (None, "plain\nsecond-line"),
        ("done", "{}"),
    ]


def test_parse_sse_stream_flushes_trailing_event():
    events = list(parse_sse_stream(["data: tail\n"]))
    assert events == [(None, "tail")]
