"""Cross-engine consistency fuzzing.

Every engine in the library must agree with the explicit-state oracle on
every workload the library itself can generate: synthesized (equivalent by
construction), mutated (usually inequivalent) and re-encoded (equivalent).
An engine may answer *inconclusive*; it must never contradict the oracle.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import verify
from repro.netlist import build_product
from repro.reach import explicit_check_equivalence
from repro.transform import (
    inject_fault,
    optimize,
    retime,
    synthesize,
    xor_reencode,
)

from .netlist.helpers import random_sequential_circuit

ENGINES = [
    ("van_eijk", {}),
    ("van_eijk", {"use_fundeps": False}),
    ("van_eijk", {"use_simulation": False}),
    ("traversal", {"max_iterations": 400}),
    ("sat_sweep", {}),
    ("sat_sweep", {"k": 2}),
    ("bmc", {"max_depth": 24}),
]


def workloads(seed):
    spec = random_sequential_circuit(seed, n_inputs=2, n_regs=3, n_gates=8)
    yield "synthesized", spec, synthesize(spec, retime_moves=2,
                                          optimize_level=2, seed=seed)
    yield "retimed", spec, retime(spec, moves=3, seed=seed + 1)
    yield "reencoded", spec, xor_reencode(spec, pairs=1, seed=seed + 2)
    mutated, _ = inject_fault(spec, seed=seed + 3)
    yield "mutated", spec, mutated


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_no_engine_contradicts_the_oracle(seed):
    for label, spec, impl in workloads(seed):
        product = build_product(spec, impl, match_outputs="order")
        oracle = explicit_check_equivalence(product)
        for method, options in ENGINES:
            result = verify(spec, impl, method=method,
                            match_outputs="order", **options)
            if oracle.proved:
                assert result.equivalent is not False, (label, method)
            else:
                assert result.equivalent is not True, (label, method)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_equivalence_preserving_workloads_all_proved(seed):
    """On the paper's target class every engine must actually *prove*."""
    spec = random_sequential_circuit(seed, n_inputs=2, n_regs=3, n_gates=8)
    impl = synthesize(spec, retime_moves=2, optimize_level=2, seed=seed)
    for method, options in ENGINES:
        result = verify(spec, impl, method=method, match_outputs="order",
                        **options)
        if method == "bmc":
            assert not result.refuted  # BMC never proves, must not refute
        else:
            assert result.proved, method
