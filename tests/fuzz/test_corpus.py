"""Corpus persistence: content-addressed, idempotent, format-checked."""

import json

import pytest

from repro.fuzz.corpus import (
    CORPUS_FORMAT_VERSION,
    CorpusEntry,
    discover,
    entry_id,
    load_entry,
    save_entry,
)
from repro.fuzz.generate import make_recipe


def _entry(seed=0):
    return CorpusEntry(make_recipe(seed),
                       finding={"kind": "cross_engine"},
                       meta={"fuzzer_seed": seed})


def test_entry_id_is_content_derived_and_stable():
    recipe = make_recipe(4)
    assert entry_id(recipe) == entry_id(json.loads(json.dumps(recipe)))
    assert entry_id(recipe) != entry_id(make_recipe(5))
    assert entry_id(recipe).startswith("fz-")


def test_save_load_round_trip(tmp_path):
    entry = _entry()
    path, written = save_entry(tmp_path, entry)
    assert written
    loaded = load_entry(path)
    assert loaded.id == entry.id
    assert loaded.recipe == entry.recipe
    assert loaded.finding == entry.finding
    assert loaded.expected == entry.expected


def test_save_is_idempotent_on_same_recipe(tmp_path):
    entry = _entry()
    path1, written1 = save_entry(tmp_path, entry)
    path2, written2 = save_entry(tmp_path, _entry())
    assert written1 and not written2
    assert path1 == path2
    assert len(list(tmp_path.glob("*.json"))) == 1


def test_discover_returns_entries_sorted_by_id(tmp_path):
    for seed in (3, 1, 2):
        save_entry(tmp_path, _entry(seed))
    entries = discover(tmp_path)
    assert len(entries) == 3
    assert [e.id for e in entries] == sorted(e.id for e in entries)


def test_unknown_format_version_is_rejected(tmp_path):
    entry = _entry()
    data = entry.as_dict()
    data["format"] = CORPUS_FORMAT_VERSION + 1
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="unsupported corpus format"):
        load_entry(path)


def test_no_temp_files_left_behind(tmp_path):
    save_entry(tmp_path, _entry())
    assert not list(tmp_path.glob("*.tmp"))
