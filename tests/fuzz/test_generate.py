"""Recipes: deterministic, JSON-round-trippable, correctly labelled."""

import json

import pytest

from repro.fuzz.generate import (
    EQUIVALENT,
    INEQUIVALENT,
    FuzzCase,
    apply_transform,
    build_base,
    build_pair,
    expected_label,
    make_case,
    make_recipe,
)


def test_make_recipe_is_deterministic_in_seed():
    assert make_recipe(42) == make_recipe(42)
    assert make_recipe(42) != make_recipe(43)


def test_recipe_survives_json_round_trip():
    recipe = make_recipe(7)
    restored = json.loads(json.dumps(recipe))
    assert restored == recipe
    spec_a, impl_a = build_pair(recipe)
    spec_b, impl_b = build_pair(restored)
    assert spec_a.stats() == spec_b.stats()
    assert impl_a.stats() == impl_b.stats()


def test_expected_label_derives_from_transform_chain():
    base = {"name": "lbl", "n_regs": 4, "seed": 1}
    assert expected_label({"base": base}) == EQUIVALENT
    assert expected_label(
        {"base": base, "transforms": [{"kind": "retime"}]}) == EQUIVALENT
    assert expected_label(
        {"base": base,
         "transforms": [{"kind": "optimize"}, {"kind": "fault"}]}
    ) == INEQUIVALENT


def test_build_base_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown base keys"):
        build_base({"name": "x", "n_regs": 4, "bogus": 1})


def test_apply_transform_rejects_unknown_kind():
    spec = build_base({"name": "x", "n_regs": 4, "seed": 0})
    with pytest.raises(ValueError, match="unknown transform kind"):
        apply_transform(spec, {"kind": "frobnicate"})


def test_identity_recipe_still_yields_two_circuit_objects():
    spec, impl = build_pair({"base": {"name": "idp", "n_regs": 4, "seed": 3},
                             "transforms": []})
    assert impl is not spec
    stats = {k: v for k, v in impl.stats().items() if k != "name"}
    assert stats == {k: v for k, v in spec.stats().items() if k != "name"}


def test_fuzz_case_memoizes_pair_and_exposes_label():
    case = FuzzCase("c1", make_recipe(5))
    assert case.pair() is case.pair()
    assert case.expected in (EQUIVALENT, INEQUIVALENT)
    assert case.expected_equivalent == (case.expected == EQUIVALENT)
    assert case.describe()["recipe"] == case.recipe


def test_make_case_ids_embed_the_seed():
    case = make_case(123)
    assert case.case_id == "fz-00000123"


def test_recipe_population_mixes_labels():
    labels = {expected_label(make_recipe(seed)) for seed in range(40)}
    assert labels == {EQUIVALENT, INEQUIVALENT}


def test_fault_probability_bounds_are_respected():
    always = [make_recipe(s, fault_probability=1.0) for s in range(10)]
    never = [make_recipe(s, fault_probability=0.0) for s in range(10)]
    assert all(expected_label(r) == INEQUIVALENT for r in always)
    assert all(expected_label(r) == EQUIVALENT for r in never)


def test_register_counts_stay_in_requested_band():
    for seed in range(20):
        recipe = make_recipe(seed, min_regs=3, max_regs=5)
        if "datapath" in recipe:
            # Datapath pairs size themselves from their operand width.
            continue
        assert 3 <= recipe["base"]["n_regs"] <= 5


def test_datapath_probability_controls_recipe_mix():
    motif_only = [make_recipe(s, datapath_probability=0.0)
                  for s in range(10)]
    datapath_only = [make_recipe(s, datapath_probability=1.0)
                     for s in range(10)]
    assert all("base" in r and "datapath" not in r for r in motif_only)
    assert all("datapath" in r and "base" not in r for r in datapath_only)
    # Planted bugs follow the fault knob: the label stays derivable.
    assert all(expected_label(r) == INEQUIVALENT
               for r in (make_recipe(s, datapath_probability=1.0,
                                     fault_probability=1.0)
                         for s in range(5)))
