"""The counterexample-replay oracle: traces must demonstrate real mismatches."""

import pytest

from repro.circuits.generators import generate_benchmark
from repro.core.bmc import bmc_refute
from repro.netlist import Circuit, GateType
from repro.netlist.product import build_product
from repro.reach.result import CexTrace, SecResult
from repro.fuzz.replay import (
    ReplayReport,
    replay_counterexample,
    replay_trace,
    validate_refutation,
)
from repro.transform import inject_distinguishable_fault, obfuscate_names, retime


def _buffer_pair():
    """An equivalent pair: an inverter chain vs. a buffer, both registered."""
    spec = Circuit("rp_spec")
    spec.add_input("a")
    spec.add_gate("d", GateType.BUF, ["a"])
    spec.add_register("r", "d", init=False)
    spec.add_gate("o", GateType.BUF, ["r"])
    spec.add_output("o")

    impl = Circuit("rp_impl")
    impl.add_input("a")
    impl.add_gate("n1", GateType.NOT, ["a"])
    impl.add_gate("d", GateType.NOT, ["n1"])
    impl.add_register("r", "d", init=False)
    impl.add_gate("o", GateType.BUF, ["r"])
    impl.add_output("o")
    return spec, impl


def _faulty_pair(seed=7):
    spec = generate_benchmark("rp{}".format(seed), n_regs=5, n_inputs=3,
                              seed=seed)
    impl, _ = inject_distinguishable_fault(spec, seed=seed)
    return spec, impl


def test_replay_trace_tracks_registers_frame_by_frame():
    spec, _ = _buffer_pair()
    frames = [{"a": True}, {"a": False}, {"a": True}]
    outputs, missing = replay_trace(spec, frames)
    # The single output is the registered input, delayed one frame.
    assert outputs == [[False], [True], [False]]
    assert missing == 0


def test_replay_trace_counts_missing_inputs_as_zero():
    spec, _ = _buffer_pair()
    outputs, missing = replay_trace(spec, [{}, {"a": True}])
    assert outputs == [[False], [False]]
    assert missing == 1


def test_bmc_counterexample_replays_valid():
    spec, impl = _faulty_pair()
    product = build_product(spec, impl, match_inputs="name",
                            match_outputs="order")
    result = bmc_refute(product, max_depth=12)
    assert result.refuted
    report = validate_refutation(spec, impl, result)
    assert report.valid
    assert report.mismatch_frame is not None
    assert report.frames == result.counterexample.length
    assert report.spec_output in spec.outputs
    assert report.impl_output in impl.outputs


def test_fabricated_trace_on_equivalent_pair_is_invalid():
    spec, impl = _buffer_pair()
    trace = CexTrace(inputs=[{"a": True}], final_input={"a": False})
    report = replay_counterexample(spec, impl, trace)
    assert not report.valid
    assert "no output mismatch" in report.reason
    assert report.frames == 2


def test_refutation_without_trace_is_invalid():
    spec, impl = _buffer_pair()
    result = SecResult(False, "bogus")
    report = validate_refutation(spec, impl, result)
    assert not report.valid
    assert "no counterexample" in report.reason


def test_validate_refutation_rejects_non_refutations():
    spec, impl = _buffer_pair()
    with pytest.raises(ValueError):
        validate_refutation(spec, impl, SecResult(True, "van_eijk"))
    with pytest.raises(ValueError):
        validate_refutation(spec, impl, SecResult(None, "van_eijk"))


def test_match_inputs_order_feeds_renamed_impl_positionally():
    spec, impl = _faulty_pair(seed=11)
    renamed = obfuscate_names(impl, seed=3)
    product = build_product(spec, renamed, match_inputs="order",
                            match_outputs="order")
    result = bmc_refute(product, max_depth=12)
    assert result.refuted
    report = validate_refutation(spec, renamed, result,
                                 match_inputs="order")
    assert report.valid
    # Under "name" matching the renamed inputs would all replay as 0, so the
    # oracle must be told how the engines matched the interfaces.
    assert report.missing_inputs == 0


def test_replay_is_independent_of_structure():
    # Retiming moves registers across gates; the replayed behaviour must
    # stay identical, so a trace that shows no mismatch stays invalid.
    spec = generate_benchmark("rp_rt", n_regs=6, n_inputs=2, seed=5)
    impl = retime(spec, moves=3, seed=5)
    trace = CexTrace(
        inputs=[{net: bool(i % 2) for net in spec.inputs} for i in range(3)],
        final_input={net: True for net in spec.inputs})
    report = replay_counterexample(spec, impl, trace)
    assert not report.valid
    assert "no output mismatch" in report.reason


def test_report_round_trips_to_dict():
    report = ReplayReport(True, frames=3, mismatch_frame=2,
                          spec_output="o", impl_output="o2")
    data = report.as_dict()
    assert data["valid"] is True
    assert data["mismatch_frame"] == 2
    assert set(data) == {"valid", "frames", "mismatch_frame", "spec_output",
                         "impl_output", "reason", "missing_inputs"}
