"""The differential loop end to end, including the injected-bug pipeline."""

from repro.fuzz import (
    CROSS_ENGINE,
    FALSE_PROOF,
    INVALID_CEX,
    DifferentialFuzzer,
    discover,
    make_recipe,
    run_fuzz,
    verify_entry,
)
from repro.reach.result import CexTrace, SecResult
from repro.service import EventBus
from repro.service import events as ev

FAST_ENGINES = (("van_eijk", {}), ("bmc", {"max_depth": 12}))


def test_clean_fuzz_run_reports_no_findings(tmp_path):
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    report = run_fuzz(iterations=6, seed=1, engines=FAST_ENGINES,
                      corpus_dir=str(tmp_path), bus=bus)
    assert report.clean
    assert report.cases_run + report.cases_skipped == 6
    assert report.cases_run > 0
    assert not list(tmp_path.glob("*.json"))
    # Every refuting verdict must have gone through the replay oracle.
    refuted = sum(t["refuted"] for t in report.verdicts.values())
    assert report.refutations_validated == refuted
    types = [event.type for event in seen]
    assert types[0] == ev.FUZZ_STARTED
    assert types[-1] == ev.FUZZ_FINISHED
    assert types.count(ev.FUZZ_CASE_FINISHED) == report.cases_run
    data = report.as_dict()
    assert data["clean"] is True
    assert data["stopped"] == "iterations"


def test_zero_time_budget_stops_before_any_case():
    report = run_fuzz(iterations=50, seed=0, engines=FAST_ENGINES,
                      time_budget=0)
    assert report.cases_run == 0
    assert report.stopped == "time_budget"


def test_check_recipe_is_clean_on_a_known_good_recipe():
    fuzzer = DifferentialFuzzer(engines=FAST_ENGINES)
    recipe = {"base": {"name": "hk", "n_regs": 4, "n_inputs": 2, "seed": 2},
              "transforms": [{"kind": "retime", "moves": 2, "seed": 0}]}
    assert fuzzer.check_recipe(recipe) == []


def test_injected_false_proof_is_shrunk_and_persisted(tmp_path):
    """The acceptance pipeline: doctored verdict → finding → shrink → corpus
    → the corpus entry re-runs red with the bug and green without it."""

    def lie_about_inequivalence(case, method, result):
        if method == "van_eijk" and not case.expected_equivalent:
            return SecResult(True, "van_eijk")
        return result

    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    fuzzer = DifferentialFuzzer(
        seed=3, engines=FAST_ENGINES, corpus_dir=str(tmp_path), bus=bus,
        fault_probability=1.0, result_hook=lie_about_inequivalence,
        shrink_evaluations=24)
    report = fuzzer.run(iterations=2)
    assert not report.clean
    kinds = {f.kind for f in report.findings}
    assert FALSE_PROOF in kinds
    # bmc still (correctly) refutes, so the lie is also a cross-engine split.
    assert CROSS_ENGINE in kinds
    assert report.corpus_paths
    types = [event.type for event in seen]
    assert ev.FUZZ_DISAGREEMENT in types
    assert ev.FUZZ_SHRUNK in types
    assert ev.FUZZ_CORPUS_SAVED in types

    entries = discover(tmp_path)
    assert entries
    for entry in entries:
        assert entry.expected == "inequivalent"
        assert entry.finding["kind"] in (FALSE_PROOF, CROSS_ENGINE)
        assert entry.meta["fuzzer_seed"] == 3
        # The shrunk recipe must still trip the injected bug...
        assert fuzzer.check_recipe(entry.recipe, case_id=entry.id)
        # ...and be clean under the real engines (the regression contract).
        assert verify_entry(entry, engines=FAST_ENGINES) == []


def test_injected_invalid_cex_is_detected(tmp_path):
    """A refutation whose trace does not replay is a finding even when no
    engine disagrees about the verdict."""

    def fabricate_trace(case, method, result):
        if method == "bmc":
            return SecResult(False, "bmc",
                             counterexample=CexTrace(inputs=[],
                                                     final_input={}))
        return result

    fuzzer = DifferentialFuzzer(
        seed=5, engines=FAST_ENGINES, corpus_dir=str(tmp_path),
        fault_probability=0.0, result_hook=fabricate_trace,
        shrink_evaluations=8)
    report = fuzzer.run(iterations=1)
    kinds = {f.kind for f in report.findings}
    assert INVALID_CEX in kinds
    invalid = next(f for f in report.findings if f.kind == INVALID_CEX)
    assert invalid.methods == ["bmc"]
    assert invalid.detail["replay"]["valid"] is False


def test_same_seed_reruns_identically():
    a = run_fuzz(iterations=4, seed=9, engines=FAST_ENGINES)
    b = run_fuzz(iterations=4, seed=9, engines=FAST_ENGINES)
    assert a.clean and b.clean
    assert a.verdicts == b.verdicts
    assert a.cases_run == b.cases_run


def test_engine_list_shorthand_uses_default_budgets():
    fuzzer = DifferentialFuzzer(engines=["bmc"])
    assert ("bmc", "bmc", {"max_depth": 12}) in fuzzer.engines
    # The "bmc" method shorthand also picks up the FRAIG-frames lane.
    lanes = {label: options for label, _, options in fuzzer.engines}
    assert lanes["bmc_fraig"]["fraig_frames"] is True


def test_engine_method_shorthand_selects_all_default_lanes():
    fuzzer = DifferentialFuzzer(engines=["sat_sweep"])
    labels = [label for label, _, _ in fuzzer.engines]
    assert "sat_sweep" in labels and "sat_sweep_par2" in labels
    lanes = {label: options for label, _, options in fuzzer.engines}
    assert lanes["sat_sweep_par2"]["refine_workers"] == 2


def test_duplicate_engine_labels_rejected():
    import pytest

    with pytest.raises(ValueError, match="duplicate"):
        DifferentialFuzzer(engines=[("bmc", {}), ("bmc", "bmc", {})])


def test_forked_workers_soak_the_service_stack(tmp_path):
    report = run_fuzz(iterations=2, seed=2, engines=FAST_ENGINES,
                      workers=2, corpus_dir=str(tmp_path))
    assert report.clean
    assert report.cases_run + report.cases_skipped == 2


def test_recipe_seeds_are_decorrelated_across_run_seeds():
    # Run seeds k and k+1 must not fuzz overlapping case seeds.
    from repro.fuzz.harness import _SEED_STRIDE

    span = 100
    first = {0 * _SEED_STRIDE + i for i in range(span)}
    second = {1 * _SEED_STRIDE + i for i in range(span)}
    assert not first & second
    assert make_recipe(_SEED_STRIDE) != make_recipe(_SEED_STRIDE + 1)
