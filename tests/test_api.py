"""Public API surface tests: the one-call entry point and package exports."""

import pytest

import repro
from repro import METHODS, SecResult, verify
from repro.circuits import fig2_pair

from .netlist.helpers import counter_circuit, toggle_circuit


def test_readme_quickstart_snippet():
    spec, impl = fig2_pair()
    result = verify(spec, impl)
    assert result.proved


def test_verify_dispatch_every_method():
    spec = toggle_circuit()
    impl = spec.copy()
    for method in METHODS:
        result = verify(spec, impl, method=method)
        assert isinstance(result, SecResult)
        if method in ("van_eijk", "traversal", "sat_sweep", "k_induction",
                      "sweep_induct", "explicit"):
            assert result.proved, method
        else:  # bmc can only refute; equivalent pair -> inconclusive
            assert not result.refuted


def test_verify_unknown_method():
    spec = toggle_circuit()
    with pytest.raises(ValueError, match="unknown method"):
        verify(spec, spec.copy(), method="quantum")


def test_verify_passes_engine_options():
    spec = counter_circuit(3)
    result = verify(spec, spec.copy(), use_retiming=False,
                    use_simulation=False, seed=7)
    assert result.proved


def test_package_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__


def test_exception_hierarchy():
    from repro import (
        BddError, NetlistError, ParseError, ReproError, SatError,
        TransformError, VerificationError,
    )

    for exc in (BddError, NetlistError, SatError, TransformError,
                VerificationError):
        assert issubclass(exc, ReproError)
    assert issubclass(ParseError, NetlistError)


def test_subpackage_exports_importable():
    import repro.bdd
    import repro.cec
    import repro.circuits
    import repro.core
    import repro.eval
    import repro.netlist
    import repro.reach
    import repro.sat
    import repro.transform

    for module in (repro.bdd, repro.cec, repro.core, repro.netlist,
                   repro.reach, repro.sat, repro.transform, repro.circuits,
                   repro.eval):
        for name in module.__all__:
            assert hasattr(module, name), (module.__name__, name)
