"""Evaluation harness tests: Table-1 runner, renderers, ablations."""

from repro.circuits import row_by_name
from repro.eval import (
    ablation_opt_level,
    ablation_reach_bound,
    ablation_retiming,
    ablation_simulation,
    fmt_any,
    render_ablation,
    render_table1,
    run_row,
    run_table,
)


def test_run_row_columns():
    row = row_by_name("s386")
    result = run_row(row)
    d = result.as_dict()
    assert d["circuit"] == "s386"
    assert d["regs"].startswith("6/")
    assert d["proposed"]["verdict"] is True
    assert d["proposed"]["retimes"] is not None
    assert d["traversal"]["verdict"] is True
    assert 0 <= d["eqs"] <= 100


def test_run_row_without_traversal():
    row = row_by_name("s386")
    result = run_row(row, run_traversal=False)
    assert result.traversal is None
    d = result.as_dict()
    assert d["traversal"] == {"time": None, "nodes": None, "its": None}


def test_run_row_traversal_abort_rendered():
    row = row_by_name("s838")
    result = run_row(row, traversal_time_limit=2.0,
                     traversal_max_iterations=50)
    assert result.traversal.inconclusive
    assert result.proposed.proved
    text = render_table1([result])
    assert "abort" in text
    assert "s838" in text


def test_run_table_and_render():
    rows = [row_by_name("s386"), row_by_name("s510")]
    results = run_table(rows, traversal_time_limit=30)
    text = render_table1(results)
    assert "s386" in text and "s510" in text
    assert "eqs%" in text
    lines = text.splitlines()
    assert len(lines) == 2 + len(results)


def test_render_ablation_generic():
    rows = [{"circuit": "a", "x": 1.5}, {"circuit": "b", "x": None}]
    text = render_ablation(
        "title", rows,
        [("circuit", "circuit", fmt_any), ("x", "metric", fmt_any)],
    )
    assert "title" in text
    assert "1.50" in text
    assert "-" in text


def test_ablation_simulation_shape():
    results = ablation_simulation([row_by_name("s386")])
    assert results[0]["both_proved"]
    assert results[0]["its_sim"] <= results[0]["its_nosim"]


def test_ablation_opt_level_shape():
    results = ablation_opt_level([row_by_name("s386")])
    row = results[0]
    assert row["both_proved"]
    assert row["eqs_optimized"] <= row["eqs_retime_only"] + 1e-9


def test_ablation_retiming_fig3_row():
    results = ablation_retiming(rows=[])
    fig3 = results[0]
    assert fig3["circuit"] == "fig3"
    assert fig3["proved_on"] and not fig3["proved_off"]


def test_ablation_reach_bound_shape():
    results = ablation_reach_bound()
    names = {r["circuit"] for r in results}
    assert names == {"onehot", "onehot_en"}
    for r in results:
        assert r["with_reach"] is True
