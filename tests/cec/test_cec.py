"""Combinational equivalence checking: BDD and SAT backends must agree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import VerificationError
from repro.netlist import Circuit, GateType, single_eval
from repro.cec import (
    check_comb_equivalence,
    check_comb_equivalence_bdd,
    check_comb_equivalence_sat,
)
from repro.transform import optimize, inject_fault

from ..netlist.helpers import random_sequential_circuit


def random_comb_circuit(seed, n_inputs=4, n_gates=10):
    """Combinational circuit: random sequential circuit with 0 registers."""
    return random_sequential_circuit(
        seed, n_inputs=n_inputs, n_regs=0, n_gates=n_gates
    )


def test_identical_equivalent_both_backends():
    c = random_comb_circuit(3)
    for backend in ("bdd", "sat"):
        result = check_comb_equivalence(c, c.copy(), backend=backend)
        assert result.equivalent, backend


def test_structurally_different_equivalent():
    c = Circuit("demorgan")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("o", GateType.NAND, ["a", "b"])
    c.add_output("o")
    d = Circuit("demorgan2")
    d.add_input("a")
    d.add_input("b")
    d.add_gate("na", GateType.NOT, ["a"])
    d.add_gate("nb", GateType.NOT, ["b"])
    d.add_gate("o", GateType.OR, ["na", "nb"])
    d.add_output("o")
    assert check_comb_equivalence_bdd(c, d).equivalent
    assert check_comb_equivalence_sat(c, d).equivalent


def test_inequivalent_with_valid_cex():
    c = Circuit("and2")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("o", GateType.AND, ["a", "b"])
    c.add_output("o")
    d = Circuit("or2")
    d.add_input("a")
    d.add_input("b")
    d.add_gate("o", GateType.OR, ["a", "b"])
    d.add_output("o")
    for checker in (check_comb_equivalence_bdd, check_comb_equivalence_sat):
        result = checker(c, d)
        assert not result.equivalent
        cex = result.counterexample
        va = single_eval(c, cex, {})["o"]
        vb = single_eval(d, cex, {})["o"]
        assert va != vb


def test_interface_errors():
    c = random_comb_circuit(1)
    seq = random_sequential_circuit(1, n_regs=2)
    with pytest.raises(VerificationError):
        check_comb_equivalence_bdd(c, seq)
    with pytest.raises(VerificationError):
        check_comb_equivalence_sat(seq, c)
    d = random_comb_circuit(2, n_inputs=5)
    with pytest.raises(VerificationError):
        check_comb_equivalence_bdd(c, d)
    with pytest.raises(ValueError):
        check_comb_equivalence(c, c, backend="nope")


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_backends_agree_on_optimized(seed):
    spec = random_comb_circuit(seed)
    impl = optimize(spec, level=2, seed=seed)
    bdd_result = check_comb_equivalence_bdd(spec, impl)
    sat_result = check_comb_equivalence_sat(spec, impl)
    assert bdd_result.equivalent
    assert sat_result.equivalent


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_backends_agree_on_mutations(seed):
    spec = random_comb_circuit(seed)
    impl, _ = inject_fault(spec, seed=seed)
    bdd_result = check_comb_equivalence_bdd(spec, impl)
    sat_result = check_comb_equivalence_sat(spec, impl)
    assert bdd_result.equivalent == sat_result.equivalent
    if not bdd_result.equivalent:
        cex = sat_result.counterexample
        outs_a = single_eval(spec, cex, {})
        outs_b = single_eval(impl, cex, {})
        assert any(
            outs_a[o1] != outs_b[o2]
            for o1, o2 in zip(spec.outputs, impl.outputs)
        )


def test_match_by_order():
    c = Circuit("m1")
    c.add_input("a")
    c.add_gate("o", GateType.NOT, ["a"])
    c.add_output("o")
    d = Circuit("m2")
    d.add_input("z")
    d.add_gate("w", GateType.NOT, ["z"])
    d.add_output("w")
    assert check_comb_equivalence_bdd(c, d, match_inputs="order").equivalent
    assert check_comb_equivalence_sat(c, d, match_inputs="order").equivalent


# ---------------------------------------------------------------- fraig


def test_fraig_backend_equivalent():
    c = random_comb_circuit(8)
    from repro.transform import optimize
    impl = optimize(c, level=2, seed=8)
    result = check_comb_equivalence(c, impl, backend="fraig")
    assert result.equivalent
    assert result.stats.get("ands_after", 0) <= result.stats.get(
        "ands_before", 10 ** 9
    )


def test_fraig_backend_inequivalent_with_cex():
    c = random_comb_circuit(9)
    impl, _ = inject_fault(c, seed=2)
    bdd_result = check_comb_equivalence_bdd(c, impl)
    fraig_result = check_comb_equivalence(c, impl, backend="fraig")
    assert bdd_result.equivalent == fraig_result.equivalent
    if not fraig_result.equivalent:
        cex = fraig_result.counterexample
        outs_a = single_eval(c, cex, {})
        outs_b = single_eval(impl, cex, {})
        assert any(
            outs_a[o1] != outs_b[o2]
            for o1, o2 in zip(c.outputs, impl.outputs)
        )


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_all_three_backends_agree(seed):
    spec = random_comb_circuit(seed)
    impl, _ = inject_fault(spec, seed=seed + 1)
    verdicts = {
        backend: check_comb_equivalence(spec, impl, backend=backend).equivalent
        for backend in ("bdd", "sat", "fraig")
    }
    assert len(set(verdicts.values())) == 1, verdicts
