"""Edge cases for the FRAIG-based combinational checker.

The sweeping CEC backend shares the AIG substrate with the sequential
preprocessor, so the corner cases the reducer newly leans on — constant
outputs, duplicate outputs, trivial one-gate circuits, positional input
matching — are pinned here directly against the other backends.
"""

import pytest

from repro.cec import check_comb_equivalence_sat
from repro.cec.fraigcec import check_comb_equivalence_fraig
from repro.errors import VerificationError
from repro.netlist import Circuit, GateType, single_eval

from ..netlist.helpers import random_sequential_circuit


def comb(seed, n_inputs=4, n_gates=12):
    return random_sequential_circuit(seed, n_inputs=n_inputs, n_regs=0,
                                     n_gates=n_gates)


def test_constant_outputs_equivalent():
    c = Circuit("c_taut")
    c.add_input("a")
    c.add_gate("na", GateType.NOT, ["a"])
    c.add_gate("o", GateType.OR, ["a", "na"])  # = 1
    c.add_output("o")
    d = Circuit("c_one")
    d.add_input("a")
    d.add_gate("o", GateType.CONST1, [])
    d.add_output("o")
    assert check_comb_equivalence_fraig(c.validate(), d.validate()).equivalent


def test_constant_outputs_inequivalent_with_cex():
    c = Circuit("c_zero")
    c.add_input("a")
    c.add_gate("o", GateType.CONST0, [])
    c.add_output("o")
    d = Circuit("c_id")
    d.add_input("a")
    d.add_gate("o", GateType.BUF, ["a"])
    d.add_output("o")
    result = check_comb_equivalence_fraig(c.validate(), d.validate())
    assert not result.equivalent
    cex = result.counterexample
    assert single_eval(c, cex, {})["o"] != single_eval(d, cex, {})["o"]


def test_duplicate_outputs():
    c = Circuit("dup")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g", GateType.AND, ["a", "b"])
    c.add_gate("g2", GateType.AND, ["b", "a"])
    c.add_output("g")
    c.add_output("g2")  # same function, twice
    d = Circuit("dup2")
    d.add_input("a")
    d.add_input("b")
    d.add_gate("h", GateType.AND, ["a", "b"])
    d.add_output("h")
    d.add_output("h")  # literally the same net, twice
    assert check_comb_equivalence_fraig(
        c.validate(), d.validate(), match_outputs="order").equivalent


def test_single_gate_circuits():
    for gtype in (GateType.AND, GateType.OR, GateType.XOR, GateType.NAND):
        c = Circuit("single_{}".format(gtype.name))
        c.add_input("a")
        c.add_input("b")
        c.add_gate("o", gtype, ["a", "b"])
        c.add_output("o")
        c.validate()
        assert check_comb_equivalence_fraig(c, c.copy()).equivalent, gtype


def test_match_inputs_order_with_renamed_nets():
    c = Circuit("named")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("o", GateType.AND, ["a", "b"])
    c.add_output("o")
    d = Circuit("renamed")
    d.add_input("x")
    d.add_input("y")
    d.add_gate("o", GateType.AND, ["x", "y"])
    d.add_output("o")
    c.validate()
    d.validate()
    # By name the interfaces differ — must refuse loudly.
    with pytest.raises(VerificationError):
        check_comb_equivalence_fraig(c, d, match_inputs="name")
    # Positionally they are the same function.
    assert check_comb_equivalence_fraig(c, d, match_inputs="order").equivalent


def test_match_inputs_order_detects_swapped_asymmetric_inputs():
    c = Circuit("impl1")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("nb", GateType.NOT, ["b"])
    c.add_gate("o", GateType.AND, ["a", "nb"])  # a & !b
    c.add_output("o")
    d = Circuit("impl2")
    d.add_input("b")
    d.add_input("a")
    d.add_gate("nb", GateType.NOT, ["b"])
    d.add_gate("o", GateType.AND, ["a", "nb"])  # same by name, not by order
    d.add_output("o")
    c.validate()
    d.validate()
    result = check_comb_equivalence_fraig(c, d, match_inputs="order")
    assert not result.equivalent


def test_sequential_circuit_rejected():
    seq = random_sequential_circuit(5, n_inputs=2, n_regs=2, n_gates=8)
    comb_c = comb(5)
    for spec, impl in ((seq, seq.copy()), (seq, comb_c), (comb_c, seq)):
        with pytest.raises(VerificationError):
            check_comb_equivalence_fraig(spec, impl)


@pytest.mark.parametrize("seed", [1, 17, 23])
def test_agrees_with_sat_backend_on_random_circuits(seed):
    c = comb(seed)
    d = comb(seed)  # same recipe -> same circuit
    fr = check_comb_equivalence_fraig(c, d)
    sat = check_comb_equivalence_sat(c, d)
    assert fr.equivalent == sat.equivalent is True
