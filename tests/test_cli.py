"""Command-line interface tests."""

import pytest

from repro.cli import main
from repro.circuits import generate_benchmark
from repro.netlist import bench, blif
from repro.transform import inject_distinguishable_fault, synthesize


@pytest.fixture(scope="module")
def circuit_files(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("cli")
    spec = generate_benchmark("cli_demo", n_regs=8, n_inputs=3, seed=11)
    impl = synthesize(spec, retime_moves=2, optimize_level=2, seed=12)
    buggy, _ = inject_distinguishable_fault(impl, seed=13)
    paths = {
        "spec": workdir / "spec.bench",
        "impl": workdir / "impl.bench",
        "buggy": workdir / "buggy.bench",
        "blif": workdir / "spec.blif",
    }
    bench.dump(spec, paths["spec"])
    bench.dump(impl, paths["impl"])
    bench.dump(buggy, paths["buggy"])
    blif.dump(spec, paths["blif"])
    return paths


def test_verify_equivalent(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"])])
    out = capsys.readouterr().out
    assert code == 0
    assert "EQUIVALENT" in out
    assert "eqs_percent" in out


def test_verify_inequivalent_prints_cex(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["buggy"])])
    out = capsys.readouterr().out
    assert code == 2
    assert "INEQUIVALENT" in out
    assert "counterexample" in out
    assert "t=0" in out


def test_verify_traversal_method(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"]), "--method", "traversal",
                 "--time-limit", "60"])
    assert code == 0
    assert "traversal" in capsys.readouterr().out


def test_verify_sat_sweep_method(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"]), "--method", "sat_sweep"])
    assert code == 0


def test_verify_blif_input(circuit_files, capsys):
    code = main(["verify", str(circuit_files["blif"]),
                 str(circuit_files["impl"])])
    assert code == 0


def test_verify_flags(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"]), "--no-simulation",
                 "--no-fundeps", "--no-retiming"])
    assert code == 0


def test_info(circuit_files, capsys):
    code = main(["info", str(circuit_files["spec"])])
    out = capsys.readouterr().out
    assert code == 0
    assert "registers: 8" in out


def test_table1_quick(capsys):
    code = main(["table1", "--scales", "small", "--traversal-time-limit",
                 "5", "--proposed-time-limit", "30"])
    # Running the whole small table through the CLI is covered by the
    # benchmark; here a smoke run over the renderer output suffices.
    out = capsys.readouterr().out
    assert code == 0
    assert "circuit" in out
    assert "s838" in out


def test_bad_method_rejected(circuit_files):
    with pytest.raises(SystemExit):
        main(["verify", str(circuit_files["spec"]),
              str(circuit_files["impl"]), "--method", "bogus"])
