"""Command-line interface tests."""

import json

import pytest

from repro.cli import main
from repro.circuits import generate_benchmark
from repro.netlist import bench, blif
from repro.transform import inject_distinguishable_fault, synthesize


@pytest.fixture(scope="module")
def circuit_files(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("cli")
    spec = generate_benchmark("cli_demo", n_regs=8, n_inputs=3, seed=11)
    impl = synthesize(spec, retime_moves=2, optimize_level=2, seed=12)
    buggy, _ = inject_distinguishable_fault(impl, seed=13)
    paths = {
        "spec": workdir / "spec.bench",
        "impl": workdir / "impl.bench",
        "buggy": workdir / "buggy.bench",
        "blif": workdir / "spec.blif",
    }
    bench.dump(spec, paths["spec"])
    bench.dump(impl, paths["impl"])
    bench.dump(buggy, paths["buggy"])
    blif.dump(spec, paths["blif"])
    return paths


def test_verify_equivalent(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"])])
    out = capsys.readouterr().out
    assert code == 0
    assert "EQUIVALENT" in out
    assert "eqs_percent" in out


def test_verify_inequivalent_prints_cex(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["buggy"])])
    out = capsys.readouterr().out
    assert code == 2
    assert "INEQUIVALENT" in out
    assert "counterexample" in out
    assert "t=0" in out


def test_verify_traversal_method(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"]), "--method", "traversal",
                 "--time-limit", "60"])
    assert code == 0
    assert "traversal" in capsys.readouterr().out


def test_verify_sat_sweep_method(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"]), "--method", "sat_sweep"])
    assert code == 0


def test_verify_sat_sweep_refine_workers(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"]), "--method", "sat_sweep",
                 "--refine-workers", "2", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["equivalent"] is True
    assert payload["details"]["refine_workers"] == 2


def test_verify_refine_batch_and_sim_backend_flags(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"]), "--method", "sat_sweep",
                 "--refine-workers", "2", "--refine-batch", "3",
                 "--sim-backend", "compiled", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["equivalent"] is True
    assert payload["details"]["refine_batch"] == 3


def test_verify_fraig_race_flag(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"]), "--method", "fraig_sweep",
                 "--fraig-race", "2", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["equivalent"] is True
    race = payload["details"]["fraig"]["race"]
    assert set(race) == {"spec", "impl"}
    assert race["spec"]["strategy"] in race["spec"]["raced"]


def test_verify_profile_flag_writes_stats(circuit_files, tmp_path, capsys):
    profile = tmp_path / "verify.prof"
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"]), "--method", "sat_sweep",
                 "--profile", str(profile)])
    assert code == 0
    import pstats

    stats = pstats.Stats(str(profile))
    assert stats.total_calls > 0


def test_verify_blif_input(circuit_files, capsys):
    code = main(["verify", str(circuit_files["blif"]),
                 str(circuit_files["impl"])])
    assert code == 0


def test_verify_flags(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"]), "--no-simulation",
                 "--no-fundeps", "--no-retiming"])
    assert code == 0


def test_verify_engine_k_induction(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"]), "--engine", "k-induction",
                 "--max-depth", "8"])
    out = capsys.readouterr().out
    assert code == 0
    assert "k_induction" in out


def test_verify_engine_sweep_induction_alias(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"]), "--engine",
                 "sat_sweep+induction"])
    out = capsys.readouterr().out
    assert code == 0
    assert "sweep_induct" in out


def test_verify_engine_refutes(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["buggy"]), "--engine", "k-induction"])
    out = capsys.readouterr().out
    assert code == 2
    assert "INEQUIVALENT" in out


def test_verify_unknown_engine_lists_valid_names(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"]), "--engine", "warp"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown engine 'warp'" in captured.err
    for name in ("van_eijk", "k_induction", "sweep_induct", "traversal"):
        assert name in captured.err


def test_info(circuit_files, capsys):
    code = main(["info", str(circuit_files["spec"])])
    out = capsys.readouterr().out
    assert code == 0
    assert "registers: 8" in out


def test_table1_quick(capsys):
    code = main(["table1", "--scales", "small", "--traversal-time-limit",
                 "5", "--proposed-time-limit", "30"])
    # Running the whole small table through the CLI is covered by the
    # benchmark; here a smoke run over the renderer output suffices.
    out = capsys.readouterr().out
    assert code == 0
    assert "circuit" in out
    assert "s838" in out


def test_verify_json_output(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"]), "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["verdict"] == "equivalent"
    assert payload["equivalent"] is True
    assert payload["method"] == "van_eijk"
    assert payload["seconds"] >= 0
    assert payload["counterexample"] is None
    assert payload["details"]["eqs_percent"] is not None
    assert payload["spec"] == str(circuit_files["spec"])


def test_verify_json_counterexample(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["buggy"]), "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert payload["verdict"] == "inequivalent"
    assert payload["counterexample"]["final_input"]


def test_verify_portfolio(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"]), "--portfolio",
                 "--time-limit", "120"])
    out = capsys.readouterr().out
    assert code == 0
    assert "EQUIVALENT" in out
    assert "portfolio" in out


def test_verify_portfolio_json(circuit_files, capsys):
    code = main(["verify", str(circuit_files["spec"]),
                 str(circuit_files["impl"]), "--portfolio", "--json",
                 "--time-limit", "120"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["equivalent"] is True
    assert payload["details"]["portfolio"]["winner"] is not None


def test_batch_two_rows_with_cache_and_events(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    events = str(tmp_path / "events.jsonl")
    argv = ["batch", "--rows", "s386", "s510", "--workers", "2",
            "--cache-dir", cache_dir, "--events", events,
            "--time-limit", "120"]
    code = main(argv)
    out = capsys.readouterr().out
    assert code == 0
    assert "batch: 2 jobs" in out
    assert "proved" in out
    lines = [json.loads(line)
             for line in open(events).read().splitlines()]
    assert lines[0]["type"] == "batch_started"
    assert lines[-1]["type"] == "batch_finished"
    # Second run must be served from the cache.
    code = main(argv)
    out = capsys.readouterr().out
    assert code == 0
    assert "cached" in out


def test_batch_json_mode(tmp_path, capsys):
    code = main(["batch", "--rows", "s386", "--workers", "0",
                 "--cache-dir", str(tmp_path / "cache"), "--json",
                 "--time-limit", "120"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert len(payload) == 1
    assert payload[0]["name"] == "s386"
    assert payload[0]["result"]["equivalent"] is True


def test_batch_refine_workers_flag(tmp_path, capsys):
    code = main(["batch", "--rows", "s386", "--workers", "0",
                 "--method", "sat_sweep", "--refine-workers", "2",
                 "--cache-dir", str(tmp_path / "cache"), "--json",
                 "--time-limit", "120"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload[0]["result"]["equivalent"] is True
    assert payload[0]["result"]["details"]["refine_workers"] == 2


def test_table1_workers_flag(capsys):
    code = main(["table1", "--scales", "small", "--workers", "2",
                 "--traversal-time-limit", "5",
                 "--proposed-time-limit", "30"])
    out = capsys.readouterr().out
    assert code == 0
    assert "s838" in out


def test_fuzz_clean_run(tmp_path, capsys):
    events = str(tmp_path / "fuzz.jsonl")
    code = main(["fuzz", "--iterations", "8", "--seed", "1",
                 "--corpus-dir", str(tmp_path / "corpus"),
                 "--engines", "van_eijk", "bmc",
                 "--events", events, "--verbose"])
    out = capsys.readouterr().out
    assert code == 0
    assert "no disagreements" in out
    assert "replay-validated" in out
    lines = [json.loads(line) for line in open(events).read().splitlines()]
    assert lines[0]["type"] == "fuzz_started"
    assert lines[-1]["type"] == "fuzz_finished"
    assert not list((tmp_path / "corpus").glob("*.json"))


def test_fuzz_json_report(tmp_path, capsys):
    code = main(["fuzz", "--iterations", "4", "--seed", "2",
                 "--corpus-dir", "",
                 "--engines", "van_eijk", "bmc", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["clean"] is True
    assert payload["cases_run"] + payload["cases_skipped"] == 4
    assert payload["stopped"] == "iterations"


def test_fuzz_time_budget_soak_mode(capsys):
    code = main(["fuzz", "--iterations", "1000", "--time-budget", "0",
                 "--corpus-dir", "", "--engines", "van_eijk", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["stopped"] == "time_budget"


def test_bad_method_rejected(circuit_files):
    with pytest.raises(SystemExit):
        main(["verify", str(circuit_files["spec"]),
              str(circuit_files["impl"]), "--method", "bogus"])
