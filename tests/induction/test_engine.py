"""The k-induction engine: proofs beyond correspondence, sound refutation.

The acceptance core of the subsystem: correspondence-inconclusive pairs
(the fixed point cannot close them) proved by induction *without* state
traversal, cross-checked against the traversal oracle; refutations must
survive replay; exactly one solver per run.
"""

import pytest

from repro import verify
from repro.core.satbackend import check_equivalence_sat_sweep
from repro.circuits import onehot_chain_pair, onehot_ring_pair
from repro.errors import VerificationError
from repro.fuzz.replay import validate_refutation
from repro.induction import (
    INDUCTION_FALLBACK,
    KInductionEngine,
    check_equivalence_k_induction,
    check_equivalence_sweep_induction,
)
from repro.netlist import build_product
from repro.reach import check_equivalence_traversal
from repro.transform import inject_distinguishable_fault, optimize

from ..netlist.helpers import counter_circuit, toggle_circuit

#: Correspondence-inconclusive pairs (the fixed point cannot prove them)
#: that k-induction must close without traversal.
INCONCLUSIVE_PAIRS = [
    ("onehot_ring", lambda: onehot_ring_pair()),
    ("onehot_ring_en", lambda: onehot_ring_pair(enable=True)),
    ("onehot_chain6", lambda: onehot_chain_pair(6)),
]


@pytest.mark.parametrize("name,make", INCONCLUSIVE_PAIRS,
                         ids=[n for n, _ in INCONCLUSIVE_PAIRS])
def test_proves_correspondence_inconclusive_pairs(name, make):
    spec, impl = make()
    sweep = check_equivalence_sat_sweep(spec, impl, match_outputs="order")
    assert sweep.equivalent is None, "pair must defeat the fixed point"
    result = check_equivalence_k_induction(spec, impl, match_outputs="order",
                                           max_depth=12)
    assert result.proved
    assert result.method == "k_induction"
    assert result.details["depth"] <= 12
    # one incremental solver for the whole depth schedule
    assert result.details["solver_stats"]["solver_constructions"] == 1
    # traversal oracle agrees
    product = build_product(spec, impl, match_outputs="order")
    oracle = check_equivalence_traversal(product)
    assert oracle.proved


def test_proves_optimized_counter():
    spec = counter_circuit(4)
    impl = optimize(spec, level=2, seed=11)
    result = check_equivalence_k_induction(spec, impl, match_outputs="order")
    assert result.proved


def test_refutes_injected_fault_with_valid_counterexample():
    spec, impl = onehot_ring_pair()
    impl, _ = inject_distinguishable_fault(impl, seed=5)
    result = check_equivalence_k_induction(spec, impl, match_outputs="order",
                                           max_depth=12)
    assert result.refuted
    assert result.counterexample is not None
    assert result.details["cex_depth"] >= 0
    report = validate_refutation(spec, impl, result, match_outputs="order")
    assert report.valid, report.reason


def test_refutes_toggle_vs_constant():
    from repro.netlist import Circuit, GateType

    spec = toggle_circuit()
    impl = Circuit("broken")
    impl.add_input("en")
    impl.add_register("q", "d", init=False)
    impl.add_gate("d", GateType.XOR, ["en", "q"])
    impl.add_gate("out", GateType.CONST0, [])
    impl.add_output("out")
    impl.validate()
    result = check_equivalence_k_induction(spec, impl, match_outputs="order")
    assert result.refuted


def test_strengthening_lowers_proof_depth():
    """The chain pair needs depth m without candidates but closes at the
    ring's depth with them — the invariant is doing real work."""
    spec, impl = onehot_chain_pair(6)
    plain = check_equivalence_k_induction(
        spec, impl, match_outputs="order", strengthen=False, max_depth=12)
    strong = check_equivalence_k_induction(
        spec, impl, match_outputs="order", strengthen=True, max_depth=12)
    assert plain.proved and strong.proved
    assert strong.details["depth"] < plain.details["depth"]
    assert strong.details["candidate_source"] == "simulation"
    assert plain.details["candidate_source"] == "none"
    assert strong.details["candidates_active"] > 0


def test_wrong_partition_is_dropped_not_trusted():
    """A deliberately false candidate partition must not break soundness:
    the engine drops refuted candidates and still proves the pair."""
    spec, impl = onehot_ring_pair()
    product = build_product(spec, impl, match_outputs="order")
    regs = list(product.circuit.registers)
    # claim ALL registers equal — false for a one-hot ring
    bogus = [[(net, False) for net in regs]]
    engine = KInductionEngine(max_depth=12, partition=bogus)
    result = engine.verify_product(product)
    assert result.proved
    assert result.details["candidates_dropped"] > 0
    assert result.details["candidate_source"] == "partition"


def test_wrong_partition_cannot_fake_a_refutation():
    """Bogus candidates on an equivalent pair never yield 'refuted'."""
    spec = counter_circuit(3)
    impl = optimize(spec, level=2, seed=3)
    product = build_product(spec, impl, match_outputs="order")
    regs = list(product.circuit.registers)
    bogus = [[(regs[0], False), (regs[1], True)],
             [(regs[i], False) for i in range(len(regs))]]
    engine = KInductionEngine(max_depth=10, partition=bogus)
    result = engine.verify_product(product)
    assert result.equivalent is not False


def test_bound_reached_is_inconclusive():
    spec, impl = onehot_chain_pair(8)
    result = check_equivalence_k_induction(
        spec, impl, match_outputs="order", strengthen=False, max_depth=2)
    assert result.equivalent is None
    assert result.details["bound_reached"] == 2


def test_time_budget_aborts_inconclusive():
    spec, impl = onehot_chain_pair(8)
    result = check_equivalence_k_induction(
        spec, impl, match_outputs="order", time_limit=0.0)
    assert result.equivalent is None
    assert "aborted" in result.details


def test_progress_rounds_emitted():
    events = []

    def progress(kind, **data):
        events.append((kind, data))

    spec, impl = onehot_ring_pair()
    result = check_equivalence_k_induction(
        spec, impl, match_outputs="order", progress=progress)
    rounds = [d for k, d in events if k == "induction_round"]
    assert result.proved
    assert len(rounds) == result.details["rounds"]
    assert rounds[-1]["proved"] is True
    assert rounds[-1]["depth"] == result.details["depth"]


def test_max_depth_validation():
    with pytest.raises(ValueError):
        KInductionEngine(max_depth=0)


def test_sweep_induction_fast_path_skips_induction():
    """A pair the fixed point proves returns in the correspondence phase."""
    spec = counter_circuit(3)
    impl = optimize(spec, level=2, seed=3)
    result = check_equivalence_sweep_induction(spec, impl,
                                               match_outputs="order")
    assert result.proved
    assert result.method == "sweep_induct"
    assert result.details["phase"] == "correspondence"


def test_sweep_induction_falls_back_with_event():
    events = []

    def progress(kind, **data):
        events.append((kind, data))

    spec, impl = onehot_chain_pair(6)
    result = check_equivalence_sweep_induction(
        spec, impl, match_outputs="order", max_depth=12, progress=progress)
    assert result.proved
    assert result.details["phase"] == "induction"
    assert result.details["sweep"]["iterations"] >= 1
    fallbacks = [d for k, d in events if k == INDUCTION_FALLBACK]
    assert len(fallbacks) == 1
    assert fallbacks[0]["classes"] >= 1


def test_sweep_induction_no_fallback_fails_fast():
    spec, impl = onehot_chain_pair(6)
    result = check_equivalence_sweep_induction(
        spec, impl, match_outputs="order", fallback=False)
    assert result.equivalent is None
    assert result.details["fallback"] == "disabled"


def test_sweep_induction_refutes_through_base_case():
    spec, impl = onehot_ring_pair()
    impl, _ = inject_distinguishable_fault(impl, seed=5)
    result = check_equivalence_sweep_induction(spec, impl,
                                               match_outputs="order")
    assert result.refuted
    report = validate_refutation(spec, impl, result, match_outputs="order")
    assert report.valid, report.reason


def test_verify_dispatch():
    spec, impl = onehot_ring_pair()
    result = verify(spec, impl, method="k_induction", match_outputs="order")
    assert result.proved
    result = verify(spec, impl, method="sweep_induct", match_outputs="order")
    assert result.proved


def test_onehot_chain_pair_validates():
    spec, impl = onehot_chain_pair(4)
    spec.validate()
    impl.validate()
    with pytest.raises(ValueError):
        onehot_chain_pair(0)
