"""Candidate invariants: construction, violation semantics, CEGAR drops."""

from repro.core.satbackend import CONST_NET
from repro.induction.invariant import (
    Candidate,
    InvariantSet,
    candidates_from_classes,
    candidates_from_simulation,
)
from repro.sat.tseitin import TseitinEncoder

from ..netlist.helpers import counter_circuit, toggle_circuit


def test_candidate_violated_by_equality():
    cand = Candidate("a", False, "b", False, 0)
    assert not cand.violated_by({"a": 1, "b": 1})
    assert cand.violated_by({"a": 1, "b": 0})


def test_candidate_complemented_pair():
    cand = Candidate("a", True, "b", False, 0)
    assert not cand.violated_by({"a": 0, "b": 1})
    assert cand.violated_by({"a": 1, "b": 1})


def test_candidate_constant_pin():
    one = Candidate("a", False, CONST_NET, False, 0)
    zero = Candidate("a", False, CONST_NET, True, 1)
    assert not one.violated_by({"a": 1})
    assert one.violated_by({"a": 0})
    assert not zero.violated_by({"a": 0})
    assert zero.violated_by({"a": 1})
    assert one.describe() == "a == 1"
    assert zero.describe() == "a == 0"


def test_candidates_from_classes_registers_only():
    circuit = counter_circuit(3)
    regs = list(circuit.registers)
    classes = [
        [(regs[0], False), (regs[1], True), ("some_gate", False)],
        [("gate_a", False), ("gate_b", False)],  # no registers: skipped
        [(regs[2], False)],  # singleton: nothing to pair
    ]
    cands = candidates_from_classes(classes, circuit)
    assert len(cands) == 1
    assert {cands[0].a_net, cands[0].b_net} == {regs[0], regs[1]}


def test_candidates_from_classes_constant_class():
    circuit = counter_circuit(3)
    regs = list(circuit.registers)
    classes = [[(CONST_NET, False), (regs[0], True), (regs[1], False)]]
    cands = candidates_from_classes(classes, circuit)
    assert len(cands) == 2
    assert all(c.is_constant for c in cands)


def test_candidates_from_classes_accepts_signal_objects():
    class Sig:
        def __init__(self, net, complemented):
            self.net = net
            self.complemented = complemented

    circuit = counter_circuit(3)
    regs = list(circuit.registers)
    cands = candidates_from_classes(
        [[Sig(regs[0], False), Sig(regs[1], False)]], circuit)
    assert len(cands) == 1
    assert not cands[0].a_comp and not cands[0].b_comp


def test_candidates_from_simulation_toggle():
    """A lone toggle register only matches the constant bucket by luck; the
    point is that the function runs and yields only register candidates."""
    circuit = toggle_circuit()
    cands = candidates_from_simulation(circuit, seed=7, sim_frames=8,
                                       sim_width=8)
    for cand in cands:
        assert cand.a_net in circuit.registers
        assert cand.is_constant or cand.b_net in circuit.registers


def test_invariant_set_drop_refuted_moves_candidates():
    cands = [Candidate("a", False, "b", False, 0),
             Candidate("a", False, CONST_NET, False, 1)]
    invs = InvariantSet(cands)
    assert invs.counts() == {"candidates_initial": 2,
                             "candidates_active": 2,
                             "candidates_dropped": 0}
    dropped = invs.drop_refuted({"a": 0, "b": 0})  # refutes the const pin
    assert dropped == [cands[1]]
    assert invs.active == [cands[0]]
    dropped = invs.drop_refuted({"a": 0, "b": 0})  # idempotent
    assert dropped == []
    assert invs.counts()["candidates_dropped"] == 1


def test_invariant_set_clauses_and_violations_roundtrip():
    """Asserted frames force equality; violation literals detect breaks."""
    from repro.sat.solver import Solver

    cands = [Candidate("a", False, "b", False, 0)]
    invs = InvariantSet(cands)
    enc = TseitinEncoder()
    invs.bind(enc)
    va, vb = enc.new_var(), enc.new_var()
    frame = {"a": va, "b": vb}
    invs.assert_frame(frame)
    viols = invs.violation_literals(0, frame)
    assert len(viols) == 1
    # memoized: same literal on re-query
    assert invs.violation_literals(0, frame) == viols

    solver = Solver()
    solver.ensure_vars(enc.cnf.num_vars)
    for clause in enc.cnf.clauses:
        solver.add_clause(clause)
    act = invs.assumptions()
    # With the candidate active, a != b is unsatisfiable.
    assert solver.solve(assumptions=act + [va, -vb]) is False
    # Without it, the violation literal can be made true.
    assert solver.solve(assumptions=viols) is True
