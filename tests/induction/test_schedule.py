"""Depth scheduling: budgets, cancellation, progress events."""

import pytest

from repro.errors import ResourceBudgetExceeded
from repro.induction.schedule import PROGRESS_INDUCTION_ROUND, DepthSchedule


def test_depths_iterates_start_to_max():
    sched = DepthSchedule(max_depth=5)
    sched.start()
    assert list(sched.depths()) == [1, 2, 3, 4, 5]


def test_custom_start_and_step():
    sched = DepthSchedule(max_depth=9, start_depth=2, step=3)
    sched.start()
    assert list(sched.depths()) == [2, 5, 8]


def test_time_budget_raises():
    sched = DepthSchedule(max_depth=10, time_limit=0.0)
    sched.start()
    with pytest.raises(ResourceBudgetExceeded):
        list(sched.depths())


def test_clause_budget_raises():
    sched = DepthSchedule(max_depth=10, clause_limit=100)
    sched.start()
    sched.check(clauses=99)
    with pytest.raises(ResourceBudgetExceeded):
        sched.check(clauses=101)


def test_cancel_check_raises():
    calls = []

    def cancel():
        calls.append(1)
        return len(calls) >= 3

    sched = DepthSchedule(max_depth=10, cancel_check=cancel)
    sched.start()
    with pytest.raises(ResourceBudgetExceeded):
        for _ in sched.depths():
            pass


def test_emit_round_counts_and_forwards():
    events = []

    def progress(kind, **data):
        events.append((kind, data))

    sched = DepthSchedule(max_depth=4, progress=progress)
    sched.start()
    sched.emit_round(1, proved=False)
    sched.emit_round(2, proved=True)
    assert sched.rounds == 2
    assert [kind for kind, _ in events] == [PROGRESS_INDUCTION_ROUND] * 2
    assert events[0][1]["depth"] == 1 and events[0][1]["round"] == 1
    assert events[1][1]["proved"] is True


def test_progress_event_name_matches_service_registry():
    from repro.service.events import PROGRESS_INDUCTION_ROUND as service_name

    assert PROGRESS_INDUCTION_ROUND == service_name == "induction_round"
