"""Boolean expression parser / SOP printer tests."""

import itertools

import pytest
from hypothesis import given, settings

from repro.bdd import BddManager
from repro.bdd.exprs import parse, to_sop
from repro.errors import BddError

from .test_ops_property import NVARS, build_bdd, eval_expr, exprs, all_envs


def test_constants_and_literals():
    mgr = BddManager()
    assert parse(mgr, "1") == mgr.true
    assert parse(mgr, "0") == mgr.false
    a = parse(mgr, "a")
    assert parse(mgr, "!a") == mgr.apply_not(a)
    assert parse(mgr, "!!a") == a


def test_operators_and_precedence():
    mgr = BddManager()
    a = parse(mgr, "a")
    b = parse(mgr, "b")
    c = parse(mgr, "c")
    # & binds tighter than |, | tighter than ^.
    assert parse(mgr, "a | b & c") == mgr.apply_or(a, mgr.apply_and(b, c))
    assert parse(mgr, "a ^ b | c") == mgr.apply_xor(a, mgr.apply_or(b, c))
    assert parse(mgr, "(a | b) & c") == mgr.apply_and(mgr.apply_or(a, b), c)


def test_implication_and_equivalence():
    mgr = BddManager()
    a = parse(mgr, "a")
    b = parse(mgr, "b")
    assert parse(mgr, "a => b") == mgr.apply_implies(a, b)
    assert parse(mgr, "a <=> b") == mgr.apply_xnor(a, b)
    # Right associativity: a => (b => a) is a tautology.
    assert parse(mgr, "a => b => a") == mgr.true


def test_auto_vars_flag():
    mgr = BddManager()
    parse(mgr, "x & y")
    assert mgr.num_vars == 2
    with pytest.raises(BddError):
        parse(mgr, "z", auto_vars=False)


def test_parse_errors():
    mgr = BddManager()
    with pytest.raises(BddError):
        parse(mgr, "a &")
    with pytest.raises(BddError):
        parse(mgr, "(a")
    with pytest.raises(BddError):
        parse(mgr, "a b")
    with pytest.raises(BddError):
        parse(mgr, "a @ b")


def test_to_sop_basic():
    mgr = BddManager()
    assert to_sop(mgr, mgr.true) == "1"
    assert to_sop(mgr, mgr.false) == "0"
    f = parse(mgr, "a & !b")
    assert to_sop(mgr, f) == "a & !b"


def test_to_sop_round_trip():
    mgr = BddManager()
    f = parse(mgr, "(a & b) | (!a & c) | (b ^ c)")
    text = to_sop(mgr, f)
    again = parse(mgr, text)
    assert again == f


def test_to_sop_cube_budget():
    mgr = BddManager()
    f = parse(mgr, " ^ ".join("v{}".format(i) for i in range(10)))
    with pytest.raises(BddError):
        to_sop(mgr, f, max_cubes=4)


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_sop_of_random_functions_round_trips(tree):
    mgr = BddManager()
    variables = mgr.add_vars(["x{}".format(i) for i in range(NVARS)])
    f = build_bdd(mgr, variables, tree)
    text = to_sop(mgr, f, max_cubes=10000)
    assert parse(mgr, text, auto_vars=False) == f
