"""Property-based tests: BDD semantics against brute-force truth tables."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager

NVARS = 4


def exprs(max_depth=4):
    """Strategy producing boolean expression trees over NVARS variables."""
    leaves = st.one_of(
        st.integers(min_value=0, max_value=NVARS - 1).map(lambda i: ("var", i)),
        st.booleans().map(lambda b: ("const", b)),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.sampled_from(["and", "or", "xor"]), children, children),
            st.tuples(st.just("ite"), children, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=12)


def eval_expr(expr, env):
    op = expr[0]
    if op == "var":
        return env[expr[1]]
    if op == "const":
        return expr[1]
    if op == "not":
        return not eval_expr(expr[1], env)
    if op == "and":
        return eval_expr(expr[1], env) and eval_expr(expr[2], env)
    if op == "or":
        return eval_expr(expr[1], env) or eval_expr(expr[2], env)
    if op == "xor":
        return eval_expr(expr[1], env) != eval_expr(expr[2], env)
    if op == "ite":
        return eval_expr(expr[2 if eval_expr(expr[1], env) else 3], env)
    raise AssertionError(op)


def build_bdd(mgr, variables, expr):
    op = expr[0]
    if op == "var":
        return variables[expr[1]]
    if op == "const":
        return mgr.true if expr[1] else mgr.false
    if op == "not":
        return mgr.apply_not(build_bdd(mgr, variables, expr[1]))
    if op == "and":
        return mgr.apply_and(
            build_bdd(mgr, variables, expr[1]), build_bdd(mgr, variables, expr[2])
        )
    if op == "or":
        return mgr.apply_or(
            build_bdd(mgr, variables, expr[1]), build_bdd(mgr, variables, expr[2])
        )
    if op == "xor":
        return mgr.apply_xor(
            build_bdd(mgr, variables, expr[1]), build_bdd(mgr, variables, expr[2])
        )
    if op == "ite":
        return mgr.ite(
            build_bdd(mgr, variables, expr[1]),
            build_bdd(mgr, variables, expr[2]),
            build_bdd(mgr, variables, expr[3]),
        )
    raise AssertionError(op)


def all_envs():
    for bits in itertools.product([False, True], repeat=NVARS):
        yield dict(enumerate(bits))


def fresh():
    mgr = BddManager()
    variables = mgr.add_vars(["x{}".format(i) for i in range(NVARS)])
    var_ids = [mgr.var_of(v) for v in variables]
    return mgr, variables, var_ids


@settings(max_examples=200, deadline=None)
@given(exprs())
def test_bdd_matches_truth_table(expr):
    mgr, variables, var_ids = fresh()
    f = build_bdd(mgr, variables, expr)
    for env in all_envs():
        bdd_env = {var_ids[i]: env[i] for i in range(NVARS)}
        assert mgr.evaluate(f, bdd_env) == eval_expr(expr, env)


@settings(max_examples=100, deadline=None)
@given(exprs(), exprs())
def test_canonicity_equal_functions_equal_edges(e1, e2):
    mgr, variables, var_ids = fresh()
    f = build_bdd(mgr, variables, e1)
    g = build_bdd(mgr, variables, e2)
    same = all(
        eval_expr(e1, env) == eval_expr(e2, env) for env in all_envs()
    )
    assert (f == g) == same


@settings(max_examples=100, deadline=None)
@given(exprs())
def test_sat_count_matches_enumeration(expr):
    mgr, variables, var_ids = fresh()
    f = build_bdd(mgr, variables, expr)
    expected = sum(1 for env in all_envs() if eval_expr(expr, env))
    assert mgr.sat_count(f, nvars=NVARS) == expected


@settings(max_examples=100, deadline=None)
@given(exprs(), st.integers(min_value=0, max_value=NVARS - 1))
def test_exists_matches_enumeration(expr, qvar):
    mgr, variables, var_ids = fresh()
    f = build_bdd(mgr, variables, expr)
    g = mgr.exists(f, [var_ids[qvar]])
    for env in all_envs():
        env_t = dict(env)
        env_t[qvar] = True
        env_f = dict(env)
        env_f[qvar] = False
        expected = eval_expr(expr, env_t) or eval_expr(expr, env_f)
        bdd_env = {var_ids[i]: env[i] for i in range(NVARS)}
        assert mgr.evaluate(g, bdd_env) == expected


@settings(max_examples=100, deadline=None)
@given(exprs(), exprs(), st.integers(min_value=0, max_value=NVARS - 1))
def test_compose_matches_substitution(outer, inner, target):
    mgr, variables, var_ids = fresh()
    f = build_bdd(mgr, variables, outer)
    g = build_bdd(mgr, variables, inner)
    composed = mgr.compose(f, var_ids[target], g)
    for env in all_envs():
        env_sub = dict(env)
        env_sub[target] = eval_expr(inner, env)
        expected = eval_expr(outer, env_sub)
        bdd_env = {var_ids[i]: env[i] for i in range(NVARS)}
        assert mgr.evaluate(composed, bdd_env) == expected


@settings(max_examples=100, deadline=None)
@given(exprs())
def test_pick_one_is_a_model(expr):
    mgr, variables, var_ids = fresh()
    f = build_bdd(mgr, variables, expr)
    model = mgr.pick_one(f)
    if f == mgr.false:
        assert model is None
    else:
        env = {v: model.get(v, False) for v in var_ids}
        assert mgr.evaluate(f, env)


@settings(max_examples=100, deadline=None)
@given(exprs(), exprs())
def test_and_exists_agrees_with_two_step(e1, e2):
    mgr, variables, var_ids = fresh()
    f = build_bdd(mgr, variables, e1)
    g = build_bdd(mgr, variables, e2)
    qvars = var_ids[:2]
    assert mgr.and_exists(f, g, qvars) == mgr.exists(mgr.apply_and(f, g), qvars)


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_invariants_hold(expr):
    mgr, variables, var_ids = fresh()
    build_bdd(mgr, variables, expr)
    assert mgr.check_invariants()
