"""Unit tests for the BDD manager core."""

import itertools

import pytest

from repro.bdd import BddManager
from repro.errors import BddError, NodeLimitExceeded


@pytest.fixture
def mgr():
    return BddManager()


def test_constants(mgr):
    assert mgr.true != mgr.false
    assert mgr.apply_not(mgr.true) == mgr.false
    assert mgr.apply_not(mgr.false) == mgr.true
    assert mgr.is_constant(mgr.true)
    assert mgr.is_constant(mgr.false)


def test_variable_creation_and_lookup(mgr):
    a = mgr.add_var("a")
    b = mgr.add_var("b")
    assert a != b
    assert mgr.var_name(mgr.var_of(a)) == "a"
    assert mgr.var_by_name("b") == mgr.var_of(b)
    assert mgr.num_vars == 2
    assert mgr.var_edge(mgr.var_of(a)) == a


def test_duplicate_variable_name_rejected(mgr):
    mgr.add_var("a")
    with pytest.raises(BddError):
        mgr.add_var("a")


def test_unknown_variable_rejected(mgr):
    with pytest.raises(BddError):
        mgr.var_edge(3)
    with pytest.raises(BddError):
        mgr.var_by_name("nope")


def test_negation_is_involution(mgr):
    a = mgr.add_var("a")
    assert mgr.apply_not(mgr.apply_not(a)) == a


def test_and_or_basic(mgr):
    a, b = mgr.add_vars(["a", "b"])
    assert mgr.apply_and(a, mgr.true) == a
    assert mgr.apply_and(a, mgr.false) == mgr.false
    assert mgr.apply_or(a, mgr.false) == a
    assert mgr.apply_or(a, mgr.true) == mgr.true
    assert mgr.apply_and(a, a) == a
    assert mgr.apply_and(a, mgr.apply_not(a)) == mgr.false
    assert mgr.apply_or(a, mgr.apply_not(a)) == mgr.true
    # Commutativity at the canonical-node level.
    assert mgr.apply_and(a, b) == mgr.apply_and(b, a)
    assert mgr.apply_or(a, b) == mgr.apply_or(b, a)


def test_de_morgan_is_structural(mgr):
    a, b = mgr.add_vars(["a", "b"])
    left = mgr.apply_not(mgr.apply_and(a, b))
    right = mgr.apply_or(mgr.apply_not(a), mgr.apply_not(b))
    assert left == right


def test_xor_xnor(mgr):
    a, b = mgr.add_vars(["a", "b"])
    x = mgr.apply_xor(a, b)
    assert mgr.apply_xnor(a, b) == mgr.apply_not(x)
    assert mgr.apply_xor(a, a) == mgr.false
    assert mgr.apply_xor(a, mgr.apply_not(a)) == mgr.true


def test_ite_shannon_expansion(mgr):
    a, b, c = mgr.add_vars(["a", "b", "c"])
    f = mgr.ite(a, b, c)
    for va, vb, vc in itertools.product([False, True], repeat=3):
        env = {mgr.var_of(a): va, mgr.var_of(b): vb, mgr.var_of(c): vc}
        assert mgr.evaluate(f, env) == (vb if va else vc)


def test_evaluate_requires_full_assignment(mgr):
    a, b = mgr.add_vars(["a", "b"])
    f = mgr.apply_and(a, b)
    with pytest.raises(BddError):
        mgr.evaluate(f, {mgr.var_of(a): True})


def test_and_many_or_many(mgr):
    vs = mgr.add_vars(["a", "b", "c", "d", "e"])
    conj = mgr.and_many(vs)
    disj = mgr.or_many(vs)
    env_true = {mgr.var_of(v): True for v in vs}
    env_one = {mgr.var_of(v): (i == 2) for i, v in enumerate(vs)}
    assert mgr.evaluate(conj, env_true)
    assert not mgr.evaluate(conj, env_one)
    assert mgr.evaluate(disj, env_one)
    assert mgr.and_many([]) == mgr.true
    assert mgr.or_many([]) == mgr.false


def test_support(mgr):
    a, b, c = mgr.add_vars(["a", "b", "c"])
    f = mgr.apply_or(mgr.apply_and(a, b), mgr.apply_and(a, mgr.apply_not(b)))
    assert mgr.support(f) == {mgr.var_of(a)}
    g = mgr.apply_xor(b, c)
    assert mgr.support(g) == {mgr.var_of(b), mgr.var_of(c)}
    assert mgr.support(mgr.true) == set()


def test_restrict(mgr):
    a, b = mgr.add_vars(["a", "b"])
    f = mgr.apply_xor(a, b)
    assert mgr.restrict(f, {mgr.var_of(a): True}) == mgr.apply_not(b)
    assert mgr.restrict(f, {mgr.var_of(a): False}) == b
    assert mgr.restrict(f, {}) == f
    both = mgr.restrict(f, {mgr.var_of(a): True, mgr.var_of(b): True})
    assert both == mgr.false


def test_cofactors(mgr):
    a, b = mgr.add_vars(["a", "b"])
    f = mgr.ite(a, b, mgr.apply_not(b))
    hi, lo = mgr.cofactors(f, mgr.var_of(a))
    assert hi == b
    assert lo == mgr.apply_not(b)
    # Cofactor w.r.t. a variable above the top is the identity.
    hi, lo = mgr.cofactors(b, mgr.var_of(a))
    assert hi == b and lo == b


def test_exists_forall(mgr):
    a, b = mgr.add_vars(["a", "b"])
    f = mgr.apply_and(a, b)
    assert mgr.exists(f, [mgr.var_of(a)]) == b
    assert mgr.forall(f, [mgr.var_of(a)]) == mgr.false
    g = mgr.apply_or(a, b)
    assert mgr.exists(g, [mgr.var_of(a)]) == mgr.true
    assert mgr.forall(g, [mgr.var_of(a)]) == b
    assert mgr.exists(f, []) == f


def test_and_exists_matches_two_step(mgr):
    a, b, c = mgr.add_vars(["a", "b", "c"])
    f = mgr.apply_or(a, b)
    g = mgr.apply_or(mgr.apply_not(b), c)
    direct = mgr.and_exists(f, g, [mgr.var_of(b)])
    two_step = mgr.exists(mgr.apply_and(f, g), [mgr.var_of(b)])
    assert direct == two_step


def test_compose_single(mgr):
    a, b, c = mgr.add_vars(["a", "b", "c"])
    f = mgr.apply_and(a, b)
    g = mgr.apply_or(b, c)
    composed = mgr.compose(f, mgr.var_of(a), g)
    expected = mgr.apply_and(g, b)
    assert composed == expected


def test_vector_compose_is_simultaneous(mgr):
    a, b = mgr.add_vars(["a", "b"])
    # Swap a and b simultaneously: f(a, b) -> f(b, a).
    f = mgr.apply_and(a, mgr.apply_not(b))
    swapped = mgr.vector_compose(
        f, {mgr.var_of(a): b, mgr.var_of(b): a}
    )
    assert swapped == mgr.apply_and(b, mgr.apply_not(a))


def test_rename_vars(mgr):
    a, b, c = mgr.add_vars(["a", "b", "c"])
    f = mgr.apply_xor(a, b)
    renamed = mgr.rename_vars(f, {mgr.var_of(a): mgr.var_of(c)})
    assert renamed == mgr.apply_xor(c, b)


def test_sat_count(mgr):
    a, b, c = mgr.add_vars(["a", "b", "c"])
    assert mgr.sat_count(mgr.true) == 8
    assert mgr.sat_count(mgr.false) == 0
    assert mgr.sat_count(a) == 4
    assert mgr.sat_count(mgr.apply_and(a, b)) == 2
    assert mgr.sat_count(mgr.apply_xor(a, c)) == 4
    assert mgr.sat_count(mgr.apply_and(a, mgr.apply_and(b, c))) == 1
    assert mgr.sat_count(a, nvars=5) == 16
    with pytest.raises(BddError):
        mgr.sat_count(a, nvars=2)


def test_pick_one(mgr):
    a, b = mgr.add_vars(["a", "b"])
    assert mgr.pick_one(mgr.false) is None
    f = mgr.apply_and(mgr.apply_not(a), b)
    model = mgr.pick_one(f)
    assert model[mgr.var_of(a)] is False
    assert model[mgr.var_of(b)] is True


def test_cube(mgr):
    a, b, c = mgr.add_vars(["a", "b", "c"])
    cube = mgr.cube({mgr.var_of(a): True, mgr.var_of(c): False})
    assert cube == mgr.apply_and(a, mgr.apply_not(c))


def test_dag_size(mgr):
    a, b = mgr.add_vars(["a", "b"])
    assert mgr.dag_size(mgr.true) == 1
    assert mgr.dag_size(a) == 2
    f = mgr.apply_xor(a, b)
    # x xor y: node(a) + node(b) + terminal.
    assert mgr.dag_size(f) == 3
    # The literal node of `a` differs from the xor's top node, so the union
    # has one extra node; the shared `b` node and terminal are not recounted.
    assert mgr.dag_size([f, a]) == 4
    assert mgr.dag_size([f, b]) == 3


def test_node_limit():
    mgr = BddManager(node_limit=4)
    vs = mgr.add_vars(["a", "b", "c"])
    with pytest.raises(NodeLimitExceeded):
        # Parity over three variables needs more than four nodes.
        mgr.apply_xor(mgr.apply_xor(vs[0], vs[1]), vs[2])


def test_garbage_collect_keeps_roots(mgr):
    a, b, c = mgr.add_vars(["a", "b", "c"])
    ids = [mgr.var_of(v) for v in (a, b, c)]
    keep = mgr.apply_and(a, b)
    token = mgr.register_root(keep)
    mgr.apply_xor(mgr.apply_or(a, c), b)  # becomes garbage
    live_before = mgr.live_nodes
    freed = mgr.garbage_collect()
    assert freed > 0
    assert mgr.live_nodes == live_before - freed
    # The kept function still evaluates correctly (unregistered edges such as
    # the bare literals must not be used after collection).
    env = {ids[0]: True, ids[1]: True, ids[2]: False}
    assert mgr.evaluate(keep, env)
    mgr.check_invariants()
    mgr.release_root(token)


def test_garbage_collect_then_reuse(mgr):
    a, b = mgr.add_vars(["a", "b"])
    mgr.apply_xor(a, b)
    mgr.register_root(a)
    mgr.register_root(b)
    mgr.garbage_collect()
    # Recreate the collected function; indices are recycled.
    f = mgr.apply_xor(a, b)
    env = {mgr.var_of(a): True, mgr.var_of(b): False}
    assert mgr.evaluate(f, env)
    mgr.check_invariants()


def test_invariants_after_mixed_workload(mgr):
    vs = mgr.add_vars(["x{}".format(i) for i in range(6)])
    f = mgr.true
    for i, v in enumerate(vs):
        f = mgr.apply_xor(f, v) if i % 2 else mgr.apply_and(f, mgr.apply_or(v, f))
    g = mgr.exists(f, [mgr.var_of(vs[0]), mgr.var_of(vs[3])])
    mgr.vector_compose(g, {mgr.var_of(vs[1]): f})
    assert mgr.check_invariants()


def test_peak_and_live_counters(mgr):
    a, b = mgr.add_vars(["a", "b"])
    mgr.apply_and(a, b)
    assert mgr.peak_live_nodes >= mgr.live_nodes
    assert mgr.created_nodes >= mgr.live_nodes


def test_constrain_basics(mgr):
    a, b = mgr.add_vars(["a", "b"])
    f = mgr.apply_and(a, b)
    # Care set TRUE: identity.
    assert mgr.constrain(f, mgr.true) == f
    # f restricted to its own on-set is TRUE.
    assert mgr.constrain(f, f) == mgr.true
    assert mgr.constrain(f, mgr.apply_not(f)) == mgr.false
    with pytest.raises(BddError):
        mgr.constrain(f, mgr.false)


def test_constrain_is_canonical_for_care_equivalence(mgr):
    a, b, c = mgr.add_vars(["a", "b", "c"])
    care = a  # care set: a == 1
    f = mgr.apply_and(a, b)   # on care: b
    g = b                     # on care: b
    assert mgr.constrain(f, care) == mgr.constrain(g, care)
    h = mgr.apply_or(b, c)
    assert mgr.constrain(f, care) != mgr.constrain(h, care)


def test_constrain_agrees_on_care_points(mgr):
    import itertools

    vs = mgr.add_vars(["x0", "x1", "x2"])
    ids = [mgr.var_of(v) for v in vs]
    f = mgr.apply_xor(mgr.apply_and(vs[0], vs[1]), vs[2])
    care = mgr.apply_or(vs[0], vs[2])
    g = mgr.constrain(f, care)
    for bits in itertools.product([False, True], repeat=3):
        env = dict(zip(ids, bits))
        if mgr.evaluate(care, env):
            assert mgr.evaluate(g, env) == mgr.evaluate(f, env)


def test_and_is_false(mgr):
    a, b = mgr.add_vars(["a", "b"])
    assert mgr.and_is_false(a, mgr.apply_not(a))
    assert mgr.and_is_false(mgr.false, a)
    assert not mgr.and_is_false(a, b)
    assert not mgr.and_is_false(a, a)
    assert not mgr.and_is_false(mgr.true, mgr.true)
    f = mgr.apply_and(a, b)
    g = mgr.apply_nor(a, b)
    assert mgr.and_is_false(f, g)
