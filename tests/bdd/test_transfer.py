"""Cross-manager BDD transfer tests."""

import pytest
from hypothesis import given, settings

from repro.bdd import BddManager
from repro.bdd.transfer import transfer
from repro.errors import BddError

from .test_ops_property import NVARS, all_envs, build_bdd, eval_expr, exprs


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_transfer_preserves_function(expr):
    src = BddManager()
    src_vars = src.add_vars(["x{}".format(i) for i in range(NVARS)])
    f = build_bdd(src, src_vars, expr)
    dst = BddManager()
    # Destination declares the variables in reverse order.
    dst_vars = dst.add_vars(["y{}".format(i) for i in reversed(range(NVARS))])
    var_map = {
        src.var_of(src_vars[i]): dst.var_by_name("y{}".format(i))
        for i in range(NVARS)
    }
    g = transfer(src, f, dst, var_map)
    for env in all_envs():
        dst_env = {dst.var_by_name("y{}".format(i)): env[i]
                   for i in range(NVARS)}
        assert dst.evaluate(g, dst_env) == eval_expr(expr, env)


def test_transfer_constants():
    src = BddManager()
    dst = BddManager()
    assert transfer(src, src.true, dst, {}) == dst.true
    assert transfer(src, src.false, dst, {}) == dst.false


def test_transfer_unmapped_variable_raises():
    src = BddManager()
    a = src.add_var("a")
    dst = BddManager()
    dst.add_var("b")
    with pytest.raises(BddError):
        transfer(src, a, dst, {})


def test_transfer_shares_structure():
    src = BddManager()
    vs = src.add_vars(["a", "b", "c"])
    f = src.apply_and(vs[0], src.apply_or(vs[1], vs[2]))
    dst = BddManager()
    dvs = dst.add_vars(["a", "b", "c"])
    var_map = {src.var_of(v): dst.var_of(d) for v, d in zip(vs, dvs)}
    g1 = transfer(src, f, dst, var_map)
    g2 = transfer(src, f, dst, var_map)
    assert g1 == g2  # canonical in the destination
