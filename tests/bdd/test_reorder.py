"""Tests for in-place adjacent swaps and sifting reordering."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager, sift, swap_adjacent, maybe_sift
from repro.bdd.dot import to_dot

from .test_ops_property import NVARS, build_bdd, eval_expr, exprs, all_envs


def build_registered(expr):
    mgr = BddManager()
    variables = mgr.add_vars(["x{}".format(i) for i in range(NVARS)])
    var_ids = [mgr.var_of(v) for v in variables]
    f = build_bdd(mgr, variables, expr)
    mgr.register_root(f)
    for v in variables:
        mgr.register_root(v)
    return mgr, var_ids, f


def check_function_preserved(mgr, var_ids, f, expr):
    for env in all_envs():
        bdd_env = {var_ids[i]: env[i] for i in range(NVARS)}
        assert mgr.evaluate(f, bdd_env) == eval_expr(expr, env)


@settings(max_examples=120, deadline=None)
@given(exprs(), st.integers(min_value=0, max_value=NVARS - 2))
def test_swap_preserves_functions(expr, level):
    mgr, var_ids, f = build_registered(expr)
    order_before = mgr.current_order()
    swap_adjacent(mgr, level)
    order_after = mgr.current_order()
    assert order_after[level] == order_before[level + 1]
    assert order_after[level + 1] == order_before[level]
    mgr.check_invariants()
    check_function_preserved(mgr, var_ids, f, expr)


@settings(max_examples=60, deadline=None)
@given(exprs(), st.lists(st.integers(min_value=0, max_value=NVARS - 2), max_size=8))
def test_swap_sequences_preserve_functions(expr, levels):
    mgr, var_ids, f = build_registered(expr)
    for level in levels:
        swap_adjacent(mgr, level)
    mgr.check_invariants()
    check_function_preserved(mgr, var_ids, f, expr)


def test_swap_is_its_own_inverse():
    mgr = BddManager()
    a, b, c = mgr.add_vars(["a", "b", "c"])
    f = mgr.ite(a, b, mgr.apply_not(c))
    mgr.register_root(f)
    for v in (a, b, c):
        mgr.register_root(v)
    order = mgr.current_order()
    size = mgr.live_nodes
    swap_adjacent(mgr, 0)
    swap_adjacent(mgr, 0)
    assert mgr.current_order() == order
    assert mgr.live_nodes == size
    mgr.check_invariants()


@settings(max_examples=40, deadline=None)
@given(exprs())
def test_sift_preserves_functions(expr):
    mgr, var_ids, f = build_registered(expr)
    sift(mgr)
    mgr.check_invariants()
    check_function_preserved(mgr, var_ids, f, expr)


def test_sift_shrinks_interleaving_worst_case():
    # f = x0·y0 + x1·y1 + x2·y2 with order x0 x1 x2 y0 y1 y2 is the textbook
    # exponential-vs-linear ordering example; sifting must find a small order.
    mgr = BddManager()
    n = 4
    xs = mgr.add_vars(["x{}".format(i) for i in range(n)])
    ys = mgr.add_vars(["y{}".format(i) for i in range(n)])
    f = mgr.or_many(mgr.apply_and(x, y) for x, y in zip(xs, ys))
    mgr.register_root(f)
    for v in xs + ys:
        mgr.register_root(v)
    before = mgr.dag_size(f)
    sift(mgr)
    after = mgr.dag_size(f)
    assert after < before
    # Optimal interleaved order gives 2n + 2 nodes including the terminal.
    assert after <= 2 * n + 2
    mgr.check_invariants()
    # Function is intact.
    env = {mgr.var_of(v): False for v in xs + ys}
    assert not mgr.evaluate(f, env)
    env[mgr.var_of(xs[2])] = True
    env[mgr.var_of(ys[2])] = True
    assert mgr.evaluate(f, env)


def test_sift_with_multiple_roots():
    mgr = BddManager()
    vs = mgr.add_vars(["v{}".format(i) for i in range(6)])
    f = mgr.and_many(vs[:4])
    g = mgr.apply_xor(vs[4], vs[5])
    h = mgr.apply_or(f, g)
    for edge in (f, g, h):
        mgr.register_root(edge)
    for v in vs:
        mgr.register_root(v)
    sift(mgr)
    mgr.check_invariants()
    env = {mgr.var_of(v): True for v in vs}
    assert mgr.evaluate(f, env)
    assert not mgr.evaluate(g, env)
    assert mgr.evaluate(h, env)


def test_maybe_sift_trigger():
    mgr = BddManager()
    xs = mgr.add_vars(["x{}".format(i) for i in range(3)])
    ys = mgr.add_vars(["y{}".format(i) for i in range(3)])
    f = mgr.or_many(mgr.apply_and(x, y) for x, y in zip(xs, ys))
    mgr.register_root(f)
    for v in xs + ys:
        mgr.register_root(v)
    assert not maybe_sift(mgr, threshold=10 ** 9)
    assert maybe_sift(mgr, threshold=1)


def test_dot_export_smoke():
    mgr = BddManager()
    a, b = mgr.add_vars(["a", "b"])
    f = mgr.apply_xor(a, b)
    text = to_dot(mgr, f, names=["parity"])
    assert "digraph" in text
    assert "parity" in text
    assert text.count("->") >= 4


def test_order_queries_after_sift():
    mgr = BddManager()
    vs = mgr.add_vars(["a", "b", "c", "d"])
    f = mgr.and_many(vs)
    mgr.register_root(f)
    for v in vs:
        mgr.register_root(v)
    sift(mgr)
    order = mgr.current_order()
    assert sorted(order) == list(range(4))
    for level, var in enumerate(order):
        assert mgr.level_of(var) == level
        assert mgr.var_at_level(level) == var
