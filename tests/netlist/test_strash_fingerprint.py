"""Properties of ``structural_fingerprint`` the result cache relies on.

The cache key for a verification job is built from the fingerprints of both
circuits, so two properties are load-bearing:

* renaming nets must *not* change the fingerprint — re-deriving an
  identical pair with different (obfuscated) names must hit the cache;
* a single-gate mutant must *never* share a fingerprint with its original —
  a collision would serve the unmutated pair's verdict for the mutated one.
"""

from hypothesis import given, settings, strategies as st

from repro.circuits.generators import generate_benchmark
from repro.netlist.strash import strash, structural_fingerprint
from repro.reach.result import SecResult
from repro.service import JobSpec, ResultCache
from repro.transform import inject_fault, obfuscate_names

seeds = st.integers(min_value=0, max_value=10 ** 6)


@settings(max_examples=25, deadline=None)
@given(seeds)
def test_renamed_circuit_keeps_fingerprint(seed):
    circuit = generate_benchmark("fp{}".format(seed), n_regs=8, seed=seed)
    renamed = obfuscate_names(circuit, seed=seed + 1)
    assert structural_fingerprint(circuit) == structural_fingerprint(renamed)


@settings(max_examples=25, deadline=None)
@given(seeds)
def test_single_gate_mutant_never_collides(seed):
    circuit = generate_benchmark("fp{}".format(seed), n_regs=8, seed=seed)
    mutant, description = inject_fault(circuit, seed=seed + 1)
    assert structural_fingerprint(circuit) != structural_fingerprint(mutant), \
        description


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_strash_is_fingerprint_neutral(seed):
    """Structural hashing is idempotent w.r.t. the fingerprint."""
    circuit = generate_benchmark("fp{}".format(seed), n_regs=6, seed=seed)
    hashed, _ = strash(circuit)
    assert structural_fingerprint(circuit) == structural_fingerprint(hashed)


def test_renamed_pair_hits_the_result_cache(tmp_path):
    """End to end: the obfuscated pair maps to the same cache entry."""
    spec = generate_benchmark("cache_spec", n_regs=6, seed=7)
    impl = generate_benchmark("cache_impl", n_regs=6, seed=8)
    job = JobSpec("orig", spec, impl, method="van_eijk")
    renamed_job = JobSpec(
        "renamed",
        obfuscate_names(spec, seed=1),
        obfuscate_names(impl, seed=2),
        method="van_eijk",
    )
    assert job.cache_key() == renamed_job.cache_key()

    cache = ResultCache(tmp_path)
    cache.put(job.cache_key(), SecResult(equivalent=True, method="van_eijk"))
    served = cache.get(renamed_job.cache_key())
    assert served is not None and served.proved


def test_mutant_pair_misses_the_result_cache(tmp_path):
    spec = generate_benchmark("cache_spec", n_regs=6, seed=7)
    mutant, _ = inject_fault(spec, seed=11)
    job = JobSpec("orig", spec, spec, method="van_eijk")
    mutant_job = JobSpec("mutant", spec, mutant, method="van_eijk")
    assert job.cache_key() != mutant_job.cache_key()

    cache = ResultCache(tmp_path)
    cache.put(job.cache_key(), SecResult(equivalent=True, method="van_eijk"))
    assert cache.get(mutant_job.cache_key()) is None
