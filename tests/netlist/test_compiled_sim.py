"""CompiledSim: the codegen kernel must be bit-identical to the interpreter.

The compiled kernel backs partition seeding, counterexample replay, and the
fuzz replay oracle, so its contract is strict: for every circuit and every
pattern word it returns exactly what ``bit_parallel_eval`` (and therefore
``single_eval``) returns, and its replay entry points agree with
``cexsplit.replay_pattern``.  Three-valued simulation is deliberately *not*
compiled; these tests pin that boundary too.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cexsplit import replay_packed, replay_pattern
from repro.errors import NetlistError
from repro.netlist import (
    Circuit,
    CompiledSim,
    GateType,
    SequentialSimulator,
    bit_parallel_eval,
    single_eval,
)
from repro.netlist.simulate import _env_net_category

from .helpers import circuit_seeds, counter_circuit, random_sequential_circuit, toggle_circuit


def random_env(circuit, rng, width):
    return {
        net: rng.getrandbits(width)
        for net in list(circuit.inputs) + list(circuit.registers)
    }


# ------------------------------------------------------------ frame identity


@settings(max_examples=60, deadline=None)
@given(circuit_seeds, st.integers(min_value=0, max_value=2 ** 30))
def test_compiled_matches_interpreter_and_reference(seed, pattern_seed):
    """CompiledSim.eval == bit_parallel_eval == single_eval, bit for bit."""
    circuit = random_sequential_circuit(seed)
    sim = CompiledSim(circuit)
    rng = random.Random(pattern_seed)
    width = 8
    env = random_env(circuit, rng, width)
    compiled = sim.eval(env, width)
    interpreted = bit_parallel_eval(circuit, env, width)
    assert compiled == interpreted
    for bit in range(width):
        env_bool = {net: bool((w >> bit) & 1) for net, w in env.items()}
        inputs = {net: env_bool[net] for net in circuit.inputs}
        state = {net: env_bool[net] for net in circuit.registers}
        expected = single_eval(circuit, inputs, state)
        for net, word in compiled.items():
            assert bool((word >> bit) & 1) == expected[net], net


def test_buf_and_const_gates_compile_to_aliases():
    c = Circuit("alias")
    c.add_input("a")
    c.add_gate("zero", GateType.CONST0, [])
    c.add_gate("one", GateType.CONST1, [])
    c.add_gate("buf", GateType.BUF, ["a"])
    c.add_gate("inv", GateType.NOT, ["buf"])
    c.add_gate("mix", GateType.OR, ["zero", "one", "buf"])
    c.add_output("mix")
    c.validate()
    sim = CompiledSim(c)
    words = sim.eval({"a": 0b1010}, 4)
    assert words == bit_parallel_eval(c, {"a": 0b1010}, 4)
    assert words["zero"] == 0
    assert words["one"] == 0b1111
    assert words["buf"] == 0b1010
    assert words["inv"] == 0b0101
    assert words["mix"] == 0b1111


def test_eval_masks_oversized_env_words():
    c = toggle_circuit()
    sim = CompiledSim(c)
    words = sim.eval({"en": 0xFF, "q": 0xFF}, 2)
    assert all(word <= 0b11 for word in words.values())


# ------------------------------------------------------------ replay identity


@settings(max_examples=30, deadline=None)
@given(circuit_seeds, st.integers(min_value=0, max_value=2 ** 30),
       st.integers(min_value=1, max_value=5))
def test_replay_matches_legacy_replay_pattern(seed, stim_seed, frames):
    circuit = random_sequential_circuit(seed)
    sim = CompiledSim(circuit)
    rng = random.Random(stim_seed)
    initial = {net: rng.random() < 0.5 for net in circuit.registers}
    stimulus = [
        {net: rng.random() < 0.5 for net in circuit.inputs}
        for _ in range(frames)
    ]
    legacy = replay_pattern(circuit, initial, stimulus)
    compiled = replay_pattern(circuit, initial, stimulus, sim=sim)
    assert len(legacy) == len(compiled) == frames
    for old, new in zip(legacy, compiled):
        assert {net: bool(v) for net, v in old.items()} == {
            net: bool(v) for net, v in new.items()}


@settings(max_examples=20, deadline=None)
@given(circuit_seeds, st.integers(min_value=0, max_value=2 ** 30),
       st.integers(min_value=1, max_value=6))
def test_replay_packed_equals_per_pattern_replays(seed, stim_seed, n_patterns):
    """Bit i of every packed word must equal pattern i's scalar replay."""
    circuit = random_sequential_circuit(seed)
    sim = CompiledSim(circuit)
    rng = random.Random(stim_seed)
    frames = 3
    patterns = []
    for _ in range(n_patterns):
        state_bits = rng.getrandbits(len(sim.registers))
        frame_bits = [rng.getrandbits(len(sim.inputs)) for _ in range(frames)]
        patterns.append((state_bits, frame_bits))
    packed = replay_packed(sim, patterns)
    assert len(packed) == frames
    for i, (state_bits, frame_bits) in enumerate(patterns):
        initial = {
            net: bool((state_bits >> j) & 1)
            for j, net in enumerate(sim.registers)
        }
        stimulus = [
            {net: bool((bits >> j) & 1) for j, net in enumerate(sim.inputs)}
            for bits in frame_bits
        ]
        scalar = sim.replay(initial, stimulus)
        for packed_words, scalar_vals in zip(packed, scalar):
            for slot, net in enumerate(sim.net_order):
                assert ((packed_words[slot] >> i) & 1) == scalar_vals[net], (
                    "pattern {} net {}".format(i, net))


def test_replay_packed_rejects_ragged_frames():
    sim = CompiledSim(toggle_circuit())
    with pytest.raises(ValueError):
        replay_packed(sim, [(0, [0, 1]), (1, [0])])


def test_replay_packed_empty_is_empty():
    sim = CompiledSim(toggle_circuit())
    assert replay_packed(sim, []) == []


# ---------------------------------------------------------------- sequential


def test_sequential_simulator_signatures_unchanged_by_compilation():
    """Signatures are pinned against a hand-run of the interpreter with the
    same RNG draw order, so kernel compilation cannot drift the partition
    seeding behaviour."""
    circuit = counter_circuit(4)
    seq = SequentialSimulator(circuit, width=16, seed=7)
    seq.run(5)
    rng = random.Random(7)
    full = (1 << 16) - 1
    init = circuit.initial_state()
    state = {net: full if init[net] else 0 for net in circuit.registers}
    sigs = {net: 0 for net in seq.sim.net_order}
    for _ in range(5):
        env = {net: rng.getrandbits(16) for net in circuit.inputs}
        env.update(state)
        words = bit_parallel_eval(circuit, env, 16)
        for net in sigs:
            sigs[net] = (sigs[net] << 16) | words[net]
        state = {
            name: words[reg.data_in]
            for name, reg in circuit.registers.items()
        }
    assert seq.signatures == sigs
    assert seq.state == state


def test_sequential_simulator_accepts_shared_kernel():
    circuit = counter_circuit(3)
    shared = CompiledSim(circuit)
    a = SequentialSimulator(circuit, width=8, seed=3, compiled=shared)
    b = SequentialSimulator(circuit, width=8, seed=3)
    a.run(4)
    b.run(4)
    assert a.sim is shared
    assert a.signatures == b.signatures


def test_compilation_and_frames_reuse_one_topo_sort():
    """validate() warms the memoized order; neither kernel compilation nor
    any number of frames recomputes it."""
    circuit = counter_circuit(4)
    baseline = circuit.topo_computations
    assert baseline >= 1
    sim = CompiledSim(circuit)
    for _ in range(10):
        sim.eval({net: 1 for net in list(circuit.inputs)
                  + list(circuit.registers)}, 1)
    assert circuit.topo_computations == baseline


# ------------------------------------------------------------ error surfaces


def test_missing_input_error_category():
    sim = CompiledSim(toggle_circuit())
    with pytest.raises(NetlistError, match="input net 'en'"):
        sim.eval({"q": 1}, 1)


def test_missing_register_error_category():
    sim = CompiledSim(toggle_circuit())
    with pytest.raises(NetlistError, match="register net 'q'"):
        sim.eval({"en": 1}, 1)


def test_interpreter_error_categories_match_compiled():
    circuit = toggle_circuit()
    with pytest.raises(NetlistError, match="input net 'en'"):
        bit_parallel_eval(circuit, {"q": 1}, 1)
    with pytest.raises(NetlistError, match="register net 'q'"):
        bit_parallel_eval(circuit, {"en": 1}, 1)


def test_env_net_category_is_exhaustive():
    circuit = toggle_circuit()
    assert _env_net_category(circuit, "en") == "input"
    assert _env_net_category(circuit, "q") == "register"
    assert _env_net_category(circuit, "nonesuch") == "undefined"
