"""Shared circuit-building helpers and hypothesis strategies for tests."""

import random

from hypothesis import strategies as st

from repro.netlist import Circuit, GateType

BINARY_TYPES = [
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]


def toggle_circuit():
    """One register toggling under an enable input; output mirrors it."""
    c = Circuit("toggle")
    c.add_input("en")
    c.add_register("q", "d", init=False)
    c.add_gate("d", GateType.XOR, ["en", "q"])
    c.add_gate("out", GateType.BUF, ["q"])
    c.add_output("out")
    return c.validate()


def counter_circuit(bits=3, name="counter"):
    """A ``bits``-wide binary up-counter with an enable input.

    Output is the MSB; classic deep-state-space workload.
    """
    c = Circuit(name)
    c.add_input("en")
    carry = "en"
    for i in range(bits):
        q = "q{}".format(i)
        c.add_register(q, "d{}".format(i), init=False)
    for i in range(bits):
        q = "q{}".format(i)
        c.add_gate("d{}".format(i), GateType.XOR, [q, carry])
        if i < bits - 1:
            nxt = "c{}".format(i)
            c.add_gate(nxt, GateType.AND, [q, carry])
            carry = nxt
    c.add_output("q{}".format(bits - 1))
    return c.validate()


def random_sequential_circuit(seed, n_inputs=3, n_regs=3, n_gates=10, name=None):
    """Deterministic random circuit: gates over inputs/registers/earlier gates."""
    rng = random.Random(seed)
    c = Circuit(name or "rand{}".format(seed))
    for i in range(n_inputs):
        c.add_input("x{}".format(i))
    for i in range(n_regs):
        c.add_register("r{}".format(i), "__tbd", init=rng.random() < 0.5)
    available = list(c.inputs) + list(c.registers)
    for i in range(n_gates):
        gtype = rng.choice(BINARY_TYPES + [GateType.NOT])
        if gtype is GateType.NOT:
            fanins = [rng.choice(available)]
        else:
            k = rng.choice([2, 2, 2, 3])
            fanins = [rng.choice(available) for _ in range(k)]
        name_i = "g{}".format(i)
        c.add_gate(name_i, gtype, fanins)
        available.append(name_i)
    gate_nets = [g for g in c.gates]
    for reg in c.registers.values():
        reg.data_in = rng.choice(gate_nets)
    n_outs = max(1, min(3, len(gate_nets)))
    for net in rng.sample(gate_nets, n_outs):
        c.add_output(net)
    c._topo_cache = None
    return c.validate()


circuit_seeds = st.integers(min_value=0, max_value=10 ** 6)
