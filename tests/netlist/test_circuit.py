"""Unit tests for the circuit IR."""

import pytest

from repro.errors import NetlistError
from repro.netlist import Circuit, GateType, eval_gate

from .helpers import counter_circuit, toggle_circuit


def test_build_and_stats():
    c = toggle_circuit()
    stats = c.stats()
    assert stats["inputs"] == 1
    assert stats["outputs"] == 1
    assert stats["registers"] == 1
    assert stats["gates"] == 2


def test_duplicate_net_rejected():
    c = Circuit()
    c.add_input("a")
    with pytest.raises(NetlistError):
        c.add_input("a")
    with pytest.raises(NetlistError):
        c.add_gate("a", GateType.NOT, ["a"])
    c.add_gate("g", GateType.NOT, ["a"])
    with pytest.raises(NetlistError):
        c.add_register("g", "a")


def test_arity_checking():
    c = Circuit()
    c.add_input("a")
    with pytest.raises(NetlistError):
        c.add_gate("g", GateType.NOT, ["a", "a"])
    with pytest.raises(NetlistError):
        c.add_gate("g", GateType.XOR, ["a"])
    with pytest.raises(NetlistError):
        c.add_gate("g", GateType.CONST0, ["a"])


def test_gate_type_coercion_from_string():
    c = Circuit()
    c.add_input("a")
    c.add_gate("g", "not", ["a"])
    assert c.gates["g"].gtype is GateType.NOT


def test_combinational_cycle_detected():
    c = Circuit()
    c.add_input("a")
    c.add_gate("g1", GateType.AND, ["a", "g2"])
    c.add_gate("g2", GateType.NOT, ["g1"])
    with pytest.raises(NetlistError, match="cycle"):
        c.topo_order()


def test_cycle_through_register_is_fine():
    c = toggle_circuit()
    assert c.topo_order()  # xor feeds register which feeds xor: sequential loop


def test_undefined_fanin_detected():
    c = Circuit()
    c.add_gate("g", GateType.NOT, ["ghost"])
    with pytest.raises(NetlistError, match="undefined"):
        c.validate()


def test_undefined_output_detected():
    c = Circuit()
    c.add_input("a")
    c.add_output("ghost")
    with pytest.raises(NetlistError, match="output"):
        c.validate()


def test_undefined_register_input_detected():
    c = Circuit()
    c.add_register("r", "ghost")
    with pytest.raises(NetlistError, match="register"):
        c.validate()


def test_topo_order_respects_dependencies():
    c = counter_circuit(4)
    order = c.topo_order()
    pos = {name: i for i, name in enumerate(order)}
    for name in order:
        for fanin in c.gates[name].fanins:
            if fanin in c.gates:
                assert pos[fanin] < pos[name]


def test_topo_order_is_memoized_until_mutation():
    c = counter_circuit(4)
    computed = c.topo_computations
    first = c.topo_order()
    # counter_circuit() validates, so the order may already be cached;
    # either way, repeated queries must not sort again.
    assert c.topo_computations == max(computed, 1)
    after_first = c.topo_computations
    for _ in range(5):
        assert c.topo_order() == first
    assert c.topo_computations == after_first
    # The cache hands out copies, not the cached list itself.
    first.append("tampered")
    assert c.topo_order() != first
    # Any structural mutation invalidates the cache exactly once.
    c.add_gate("extra", GateType.NOT, ["en"])
    c.topo_order()
    c.topo_order()
    assert c.topo_computations == after_first + 1


def test_initial_state():
    c = Circuit()
    c.add_input("a")
    c.add_register("r0", "a", init=False)
    c.add_register("r1", "a", init=True)
    assert c.initial_state() == {"r0": False, "r1": True}


def test_copy_is_deep():
    c = toggle_circuit()
    dup = c.copy()
    dup.gates["d"].fanins[0] = "q"
    assert c.gates["d"].fanins[0] == "en"
    dup.registers["q"].init = True
    assert c.registers["q"].init is False


def test_renamed_keeps_shared_inputs():
    c = toggle_circuit()
    r = c.renamed("p.")
    assert r.inputs == ["en"]
    assert "p.q" in r.registers
    assert r.registers["p.q"].data_in == "p.d"
    assert r.outputs == ["p.out"]
    r2 = c.renamed("p.", keep_inputs=False)
    assert r2.inputs == ["p.en"]


def test_replace_fanin():
    c = toggle_circuit()
    c.add_gate("d2", GateType.XOR, ["en", "q"])
    c.replace_fanin("d", "d2")
    assert c.registers["q"].data_in == "d2"


def test_fresh_name():
    c = toggle_circuit()
    assert c.fresh_name("new") == "new"
    n1 = c.fresh_name("q")
    assert n1 != "q" and not c.is_defined(n1)


def test_fanout_map():
    c = toggle_circuit()
    fanout = c.fanout_map()
    assert set(fanout["q"]) == {"d", "out"}
    assert fanout["d"] == ["q"]


def test_driver_kind():
    c = toggle_circuit()
    assert c.driver_kind("en") == "input"
    assert c.driver_kind("q") == "register"
    assert c.driver_kind("d") == "gate"
    with pytest.raises(NetlistError):
        c.driver_kind("ghost")


def test_signals_covers_everything():
    c = counter_circuit(3)
    signals = c.signals()
    assert set(signals) == set(c.inputs) | set(c.registers) | set(c.gates)


@pytest.mark.parametrize(
    "gtype,values,expected",
    [
        (GateType.AND, [True, True, False], False),
        (GateType.AND, [True, True], True),
        (GateType.OR, [False, False], False),
        (GateType.OR, [False, True], True),
        (GateType.NAND, [True, True], False),
        (GateType.NOR, [False, False], True),
        (GateType.XOR, [True, True, True], True),
        (GateType.XOR, [True, True], False),
        (GateType.XNOR, [True, False], False),
        (GateType.NOT, [True], False),
        (GateType.BUF, [True], True),
        (GateType.CONST0, [], False),
        (GateType.CONST1, [], True),
    ],
)
def test_eval_gate(gtype, values, expected):
    assert eval_gate(gtype, values) is expected
