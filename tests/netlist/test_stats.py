"""Circuit statistics and graph-structure analysis tests."""

from repro.netlist import Circuit, GateType
from repro.netlist.stats import (
    circuit_report,
    fanout_histogram,
    feedback_register_set,
    gate_histogram,
    is_pipeline,
    logic_depth,
    register_digraph,
    register_sccs,
    structural_similarity,
)
from repro.transform import synthesize

from .helpers import counter_circuit, random_sequential_circuit, toggle_circuit


def test_gate_histogram():
    c = counter_circuit(3)
    hist = gate_histogram(c)
    assert hist["XOR"] == 3
    assert hist["AND"] == 2


def test_logic_depth():
    c = counter_circuit(4)
    # Carry chain: c0..c2 then d3 -> depth 4.
    assert logic_depth(c) == 4
    assert logic_depth(toggle_circuit()) == 1


def test_fanout_histogram():
    c = toggle_circuit()
    hist = fanout_histogram(c)
    assert hist[2] >= 1  # q feeds d and out


def test_register_digraph_counter():
    c = counter_circuit(3)
    graph = register_digraph(c)
    assert graph.has_edge("q0", "q2")
    assert graph.has_edge("q0", "q0")  # self-dependency (toggle)
    assert not graph.has_edge("q2", "q0")


def test_register_sccs():
    c = counter_circuit(3)
    sccs = register_sccs(c)
    # A counter has only self-loops: three singleton SCCs.
    assert len(sccs) == 3
    assert all(len(s) == 1 for s in sccs)
    # A ring: one SCC of size 3.
    ring = Circuit("ring")
    ring.add_register("a", "c", init=True)
    ring.add_register("b", "a", init=False)
    ring.add_register("c", "b", init=False)
    ring.add_output("a")
    assert register_sccs(ring)[0] == {"a", "b", "c"}


def test_feedback_register_set():
    # Pure pipeline: no feedback at all.
    pipe = Circuit("pipe")
    pipe.add_input("x")
    pipe.add_register("s1", "x", init=False)
    pipe.add_register("s2", "s1", init=False)
    pipe.add_output("s2")
    assert feedback_register_set(pipe) == set()
    assert is_pipeline(pipe)
    # Counter: every bit toggles on itself.
    c = counter_circuit(3)
    assert len(feedback_register_set(c)) == 3
    assert not is_pipeline(c)
    # Ring: one removal suffices.
    ring = Circuit("ring")
    ring.add_register("a", "c", init=True)
    ring.add_register("b", "a", init=False)
    ring.add_register("c", "b", init=False)
    ring.add_output("a")
    assert len(feedback_register_set(ring)) == 1


def test_circuit_report_keys():
    report = circuit_report(counter_circuit(4))
    assert report["registers"] == 4
    assert report["depth"] == 4
    assert report["sequential_sccs"] == 4
    assert report["feedback_registers"] == 4


def test_structural_similarity_drops_after_synthesis():
    spec = random_sequential_circuit(12, n_regs=4, n_gates=14)
    impl = synthesize(spec, retime_moves=3, optimize_level=2, seed=5)
    sim = structural_similarity(spec, impl)
    identical = structural_similarity(spec, spec.copy())
    assert identical["gate_histogram_jaccard"] == 1.0
    assert identical["shared_net_names"] > 0
    assert sim["shared_net_names"] == 0  # obfuscation killed all names
    assert 0.0 <= sim["gate_histogram_jaccard"] <= 1.0
