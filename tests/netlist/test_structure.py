"""Tests for strash, cones, product machine and BDD building."""

import pytest

from hypothesis import given, settings

from repro.bdd import BddManager
from repro.errors import VerificationError
from repro.netlist import (
    Circuit,
    GateType,
    SequentialSimulator,
    build_bdds,
    build_product,
    single_eval,
    strash,
)
from repro.netlist.cones import (
    combinational_support,
    level_map,
    output_cone_sizes,
    register_blocks,
    register_dependency_graph,
    static_variable_order,
    transitive_fanin,
)

from .helpers import circuit_seeds, counter_circuit, random_sequential_circuit, toggle_circuit


# ----------------------------------------------------------------- strash


def test_strash_merges_duplicates():
    c = Circuit("dup")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g1", GateType.AND, ["a", "b"])
    c.add_gate("g2", GateType.AND, ["b", "a"])  # commutative duplicate
    c.add_gate("o", GateType.OR, ["g1", "g2"])
    c.add_output("o")
    hashed, rep = strash(c)
    assert rep["g1"] == rep["g2"]
    assert hashed.num_gates == 2  # one AND + the OR


def test_strash_collapses_buffers():
    c = Circuit("bufs")
    c.add_input("a")
    c.add_gate("b1", GateType.BUF, ["a"])
    c.add_gate("b2", GateType.BUF, ["b1"])
    c.add_gate("o", GateType.NOT, ["b2"])
    c.add_output("o")
    hashed, rep = strash(c)
    assert rep["b2"] == "a"
    assert hashed.gates["o"].fanins == ["a"]
    assert hashed.num_gates == 1


def test_strash_preserves_registers():
    c = toggle_circuit()
    hashed, rep = strash(c)
    assert hashed.num_registers == 1
    assert hashed.registers["q"].data_in == rep["d"]


def test_strash_merge_registers():
    c = Circuit("regdup")
    c.add_input("a")
    c.add_register("r1", "a", init=False)
    c.add_register("r2", "a", init=False)
    c.add_register("r3", "a", init=True)  # different init: kept
    c.add_gate("o", GateType.XOR, ["r1", "r2"])
    c.add_gate("o2", GateType.XOR, ["r1", "r3"])
    c.add_output("o")
    c.add_output("o2")
    merged, rep = strash(c, merge_registers=True)
    assert merged.num_registers == 2
    assert rep["r2"] == rep["r1"]
    assert rep["r3"] != rep["r1"]


@settings(max_examples=30, deadline=None)
@given(circuit_seeds)
def test_strash_preserves_behavior(seed):
    c = random_sequential_circuit(seed)
    hashed, rep = strash(c)
    sim_a = SequentialSimulator(c, width=16, seed=8).run(5)
    sim_b = SequentialSimulator(hashed, width=16, seed=8).run(5)
    for out_a, out_b in zip(c.outputs, hashed.outputs):
        assert sim_a[out_a] == sim_b[out_b]


# ----------------------------------------------------------------- cones


def test_transitive_fanin_stops_at_registers():
    c = toggle_circuit()
    cone = transitive_fanin(c, "d")
    assert cone == {"d", "en", "q"}
    deep = transitive_fanin(c, "d", stop_at_registers=False)
    assert deep == {"d", "en", "q"}  # sequential loop closes on itself


def test_combinational_support():
    c = counter_circuit(3)
    assert combinational_support(c, "d0") == {"en", "q0"}
    assert combinational_support(c, "d2") == {"en", "q0", "q1", "q2"}


def test_level_map():
    c = counter_circuit(3)
    levels = level_map(c)
    assert levels["en"] == 0
    assert levels["d0"] == 1
    assert levels["d2"] > levels["d1"]


def test_static_variable_order_covers_all_sources():
    c = counter_circuit(4)
    order = static_variable_order(c)
    assert sorted(order) == sorted(list(c.inputs) + list(c.registers))
    pinned = static_variable_order(c, extra_first=["q2"])
    assert pinned[0] == "q2"


def test_output_cone_sizes():
    c = counter_circuit(3)
    sizes = output_cone_sizes(c)
    assert sizes["q2"] == 1


def test_register_dependency_graph():
    c = counter_circuit(3)
    graph = register_dependency_graph(c)
    assert graph["q0"] == {"q0"}
    assert graph["q2"] == {"q0", "q1", "q2"}


def test_register_blocks_partition():
    c = random_sequential_circuit(3, n_regs=6, n_gates=20)
    blocks = register_blocks(c, max_block=3)
    flattened = [r for block in blocks for r in block]
    assert sorted(flattened) == sorted(c.registers)
    assert all(len(block) <= 3 for block in blocks)


# ----------------------------------------------------------------- product


def test_build_product_by_name():
    a = toggle_circuit()
    b = toggle_circuit()
    product = build_product(a, b)
    assert len(product.output_pairs) == 1
    s_out, i_out = product.output_pairs[0]
    assert s_out.startswith("s.")
    assert i_out.startswith("i.")
    assert product.circuit.num_registers == 2
    assert product.inputs == ["en"]
    assert product.origin(s_out) == "spec"
    assert product.origin(i_out) == "impl"
    assert product.origin("en") == "input"


def test_build_product_by_order():
    a = toggle_circuit()
    b = toggle_circuit().renamed("z_", keep_inputs=False)
    product = build_product(a, b, match_inputs="order", match_outputs="order")
    assert product.inputs == ["en"]
    values = single_eval(
        product.circuit,
        {"en": True},
        {name: reg.init for name, reg in product.registers.items()},
    )
    s_out, i_out = product.output_pairs[0]
    assert values[s_out] == values[i_out]


def test_build_product_interface_mismatch():
    a = toggle_circuit()
    b = toggle_circuit()
    b.add_input("extra")
    with pytest.raises(VerificationError):
        build_product(a, b)
    c = toggle_circuit()
    c.outputs.append("d")
    with pytest.raises(VerificationError):
        build_product(a, c)


def test_product_behaviour_matches_components():
    spec = random_sequential_circuit(17)
    impl = random_sequential_circuit(17)  # identical circuit
    product = build_product(spec, impl)
    sim = SequentialSimulator(product.circuit, width=16, seed=5)
    sim.run(6)
    for s_net, i_net in product.output_pairs:
        assert sim.signatures[s_net] == sim.signatures[i_net]


# ----------------------------------------------------------------- bddnet


def _leaves_for(circuit, mgr):
    leaves = {}
    for net in list(circuit.inputs) + list(circuit.registers):
        leaves[net] = mgr.add_var(net)
    return leaves


@settings(max_examples=30, deadline=None)
@given(circuit_seeds)
def test_build_bdds_matches_simulation(seed):
    import random as pyrandom

    circuit = random_sequential_circuit(seed)
    mgr = BddManager()
    leaves = _leaves_for(circuit, mgr)
    values = build_bdds(circuit, mgr, leaves)
    rng = pyrandom.Random(seed + 1)
    for _ in range(8):
        env_bool = {
            net: rng.random() < 0.5
            for net in list(circuit.inputs) + list(circuit.registers)
        }
        expected = single_eval(
            circuit,
            {k: env_bool[k] for k in circuit.inputs},
            {k: env_bool[k] for k in circuit.registers},
        )
        bdd_env = {mgr.var_of(leaves[net]): env_bool[net] for net in leaves}
        for net, edge in values.items():
            assert mgr.evaluate(edge, bdd_env) == expected[net], net


def test_build_bdds_partial_cone():
    circuit = counter_circuit(3)
    mgr = BddManager()
    leaves = _leaves_for(circuit, mgr)
    values = build_bdds(circuit, mgr, leaves, nets=["d0"])
    assert "d0" in values
    assert "d2" not in values
