"""MatrixSim: the numpy lane-parallel backend must be bit-identical.

``MatrixSim`` backs packed counterexample replay (the parallel engine's
merge hot path) and is the ``auto`` :func:`make_sim` selection whenever
numpy imports, so its contract is the same strict one ``CompiledSim``
carries: for every circuit, every pattern word, both the scalar fast path
and the forced matrix pass (``narrow_width = 0``) must agree with
``bit_parallel_eval`` — including BUF/const aliasing and the missing-env
``NetlistError`` categories.  These tests also pin backend selection:
unknown names fail loudly, ``matrix`` without numpy fails loudly, and
``auto`` falls back to ``CompiledSim`` silently.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cexsplit import replay_packed
from repro.errors import NetlistError
from repro.netlist import (
    SIM_BACKENDS,
    Circuit,
    CompiledSim,
    GateType,
    bit_parallel_eval,
    make_sim,
)
from repro.netlist import simulate
from repro.netlist.simulate import MatrixSim, _numpy

from .helpers import circuit_seeds, random_sequential_circuit, toggle_circuit

pytestmark = pytest.mark.skipif(
    _numpy() is None, reason="matrix backend requires numpy")


def forced_matrix(circuit):
    """A MatrixSim whose eval-shaped calls take the matrix pass, not the
    embedded scalar kernel — the path plain usage never widens into."""
    sim = MatrixSim(circuit)
    sim.narrow_width = 0
    return sim


def random_env(circuit, rng, width):
    return {
        net: rng.getrandbits(width)
        for net in list(circuit.inputs) + list(circuit.registers)
    }


# ------------------------------------------------------------ frame identity


@settings(max_examples=40, deadline=None)
@given(circuit_seeds, st.integers(min_value=0, max_value=2 ** 30),
       st.sampled_from([1, 8, 64, 65, 150]))
def test_matrix_matches_compiled_and_interpreter(seed, pattern_seed, width):
    """Forced matrix pass == CompiledSim == bit_parallel_eval, bit for bit,
    below, at, and across the 64-bit lane boundary."""
    circuit = random_sequential_circuit(seed)
    compiled = CompiledSim(circuit)
    matrix = forced_matrix(circuit)
    rng = random.Random(pattern_seed)
    env = random_env(circuit, rng, width)
    assert matrix.eval(env, width) == compiled.eval(env, width)
    assert matrix.eval(env, width) == bit_parallel_eval(circuit, env, width)


def test_default_narrow_width_routes_through_scalar_kernel():
    """By default every eval-shaped call takes the embedded compiled
    kernel (the measured fast path); the matrix pass is opt-in."""
    sim = MatrixSim(toggle_circuit())
    assert sim.narrow_width is None
    assert sim._use_scalar(1) and sim._use_scalar(10 ** 6)
    sim.narrow_width = 0
    assert not sim._use_scalar(1)


def test_buf_and_const_gates_alias_in_matrix_space():
    c = Circuit("alias")
    c.add_input("a")
    c.add_gate("zero", GateType.CONST0, [])
    c.add_gate("one", GateType.CONST1, [])
    c.add_gate("buf", GateType.BUF, ["a"])
    c.add_gate("inv", GateType.NOT, ["buf"])
    c.add_gate("mix", GateType.OR, ["zero", "one", "buf"])
    c.add_output("mix")
    c.validate()
    words = forced_matrix(c).eval({"a": 0b1010}, 4)
    assert words == bit_parallel_eval(c, {"a": 0b1010}, 4)
    assert words["zero"] == 0
    assert words["one"] == 0b1111
    assert words["buf"] == 0b1010
    assert words["inv"] == 0b0101


def test_matrix_masks_oversized_env_words():
    words = forced_matrix(toggle_circuit()).eval({"en": 0xFF, "q": 0xFF}, 2)
    assert all(word <= 0b11 for word in words.values())


def test_slot_layout_is_shared_with_compiled():
    circuit = random_sequential_circuit(5)
    compiled = CompiledSim(circuit)
    matrix = MatrixSim(circuit)
    assert matrix.net_order == compiled.net_order
    assert all(matrix.index(net) == compiled.index(net)
               for net in matrix.net_order)
    assert matrix.next_state_slots == compiled.next_state_slots


# ------------------------------------------------------------ replay identity


@settings(max_examples=20, deadline=None)
@given(circuit_seeds, st.integers(min_value=0, max_value=2 ** 30),
       st.integers(min_value=1, max_value=4))
def test_matrix_replay_matches_compiled(seed, stim_seed, frames):
    circuit = random_sequential_circuit(seed)
    compiled = CompiledSim(circuit)
    matrix = forced_matrix(circuit)
    rng = random.Random(stim_seed)
    initial = {net: rng.random() < 0.5 for net in circuit.registers}
    stimulus = [
        {net: rng.random() < 0.5 for net in circuit.inputs}
        for _ in range(frames)
    ]
    assert matrix.replay(initial, stimulus) == compiled.replay(
        initial, stimulus)


@settings(max_examples=15, deadline=None)
@given(circuit_seeds, st.integers(min_value=0, max_value=2 ** 30),
       st.sampled_from([1, 64, 100]))
def test_matrix_replay_packed_matches_generic(seed, stim_seed, n_patterns):
    """``MatrixSim.replay_packed`` (vectorized transpose) must equal the
    generic Python packing over ``CompiledSim``, on either side of the
    delegation threshold."""
    circuit = random_sequential_circuit(seed)
    compiled = CompiledSim(circuit)
    matrix = MatrixSim(circuit)
    rng = random.Random(stim_seed)
    frames = 2
    patterns = [
        (rng.getrandbits(len(compiled.registers)),
         [rng.getrandbits(len(compiled.inputs)) for _ in range(frames)])
        for _ in range(n_patterns)
    ]
    reference = replay_packed(compiled, patterns)
    assert matrix.replay_packed(patterns) == reference
    # The generic entry point delegates to the native method past a word's
    # worth of patterns; either route must be invisible.
    assert replay_packed(matrix, patterns) == reference


def test_replay_packed_delegates_to_native_method_when_wide():
    circuit = toggle_circuit()
    matrix = MatrixSim(circuit)
    calls = []
    original = matrix.replay_packed

    def spy(patterns):
        calls.append(len(patterns))
        return original(patterns)

    matrix.replay_packed = spy
    narrow = [(0, [1]) for _ in range(64)]
    wide = [(0, [1]) for _ in range(65)]
    replay_packed(matrix, narrow)
    assert calls == []  # a word or less stays on the generic path
    replay_packed(matrix, wide)
    assert calls == [65]


def test_matrix_replay_packed_rejects_ragged_frames():
    with pytest.raises(ValueError):
        MatrixSim(toggle_circuit()).replay_packed([(0, [0, 1]), (1, [0])])


def test_matrix_replay_packed_empty_is_empty():
    assert MatrixSim(toggle_circuit()).replay_packed([]) == []


# ------------------------------------------------------------ error surfaces


def test_missing_env_error_categories_match_compiled():
    """The matrix backend reports missing env nets with the same category
    naming as CompiledSim and the interpreter."""
    for sim in (MatrixSim(toggle_circuit()), forced_matrix(toggle_circuit())):
        with pytest.raises(NetlistError, match="input net 'en'"):
            sim.eval({"q": 1}, 1)
        with pytest.raises(NetlistError, match="register net 'q'"):
            sim.eval({"en": 1}, 1)


# ---------------------------------------------------------- backend selection


def test_make_sim_selects_backends():
    circuit = toggle_circuit()
    assert make_sim(circuit, "compiled").backend == "compiled"
    assert make_sim(circuit, "matrix").backend == "matrix"
    assert make_sim(circuit, "auto").backend == "matrix"  # numpy present


def test_make_sim_rejects_unknown_backend():
    with pytest.raises(NetlistError, match="auto|compiled|matrix"):
        make_sim(toggle_circuit(), "cuda")
    assert SIM_BACKENDS == ("auto", "compiled", "matrix")


def test_auto_falls_back_without_numpy(monkeypatch):
    monkeypatch.setattr(simulate, "_NUMPY", None)
    circuit = toggle_circuit()
    assert make_sim(circuit, "auto").backend == "compiled"
    with pytest.raises(NetlistError, match="requires numpy"):
        make_sim(circuit, "matrix")
