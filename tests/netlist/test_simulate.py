"""Simulation tests: bit-parallel vs. reference semantics, ternary algebra."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import generate_benchmark
from repro.errors import NetlistError
from repro.netlist import (
    Circuit,
    GateType,
    SequentialSimulator,
    bit_parallel_eval,
    eval_gate,
    next_state,
    single_eval,
    ternary_eval,
    tv_const,
    x_initialized_fixpoint,
)

from .helpers import circuit_seeds, counter_circuit, random_sequential_circuit, toggle_circuit


def reference_eval(circuit, env_bool):
    """Gate-by-gate reference evaluation using eval_gate."""
    values = dict(env_bool)
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        values[name] = eval_gate(gate.gtype, [values[f] for f in gate.fanins])
    return values


@settings(max_examples=60, deadline=None)
@given(circuit_seeds, st.integers(min_value=0, max_value=2 ** 30))
def test_bit_parallel_matches_reference(seed, pattern_seed):
    circuit = random_sequential_circuit(seed)
    rng = random.Random(pattern_seed)
    width = 8
    env = {
        net: rng.getrandbits(width)
        for net in list(circuit.inputs) + list(circuit.registers)
    }
    words = bit_parallel_eval(circuit, env, width)
    for bit in range(width):
        env_bool = {net: bool((word >> bit) & 1) for net, word in env.items()}
        expected = reference_eval(circuit, env_bool)
        for net, word in words.items():
            assert bool((word >> bit) & 1) == expected[net], net


def test_bit_parallel_missing_input_names_net():
    c = toggle_circuit()
    with pytest.raises(NetlistError, match="input net 'en'"):
        bit_parallel_eval(c, {"q": 0}, 1)


def test_bit_parallel_missing_register_names_net():
    c = toggle_circuit()
    with pytest.raises(NetlistError, match="register net 'q'"):
        bit_parallel_eval(c, {"en": 1}, 1)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=2 ** 30),
    st.integers(min_value=0, max_value=2 ** 30),
    st.integers(min_value=2, max_value=29),
)
def test_bit_parallel_matches_single_eval_on_generated(seed, pattern_seed,
                                                      width):
    """Width-w packed evaluation must agree with single_eval per pattern on
    the benchmark generator's circuits (the suite's structural families)."""
    circuit = generate_benchmark("prop", n_regs=5, n_inputs=3,
                                 seed=seed % 997)
    rng = random.Random(pattern_seed)
    env = {
        net: rng.getrandbits(width)
        for net in list(circuit.inputs) + list(circuit.registers)
    }
    words = bit_parallel_eval(circuit, env, width)
    for bit in range(width):
        inputs = {
            net: bool((env[net] >> bit) & 1) for net in circuit.inputs
        }
        state = {
            net: bool((env[net] >> bit) & 1) for net in circuit.registers
        }
        expected = single_eval(circuit, inputs, state)
        for net, word in words.items():
            assert bool((word >> bit) & 1) == expected[net], (net, bit)


def test_single_eval_toggle():
    c = toggle_circuit()
    values = single_eval(c, {"en": True}, {"q": False})
    assert values["d"] is True
    assert values["out"] is False
    assert next_state(c, values) == {"q": True}


def test_sequential_simulator_counter():
    c = counter_circuit(3)
    sim = SequentialSimulator(c, width=1, seed=7)
    # Drive enable high deterministically by monkey-patching the rng.
    sim.rng = random.Random(0)
    sim.rng.getrandbits = lambda width: 1
    states = []
    for _ in range(9):
        values = sim.step()
        states.append(tuple(int(values["q{}".format(i)]) for i in range(3)))
    # Counter counts 0,1,2,... then wraps: states show the pre-update value.
    expected = [(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0),
                (0, 0, 1), (1, 0, 1), (0, 1, 1), (1, 1, 1), (0, 0, 0)]
    assert states == expected


def test_sequential_simulator_signatures_accumulate():
    c = toggle_circuit()
    sim = SequentialSimulator(c, width=16, seed=3)
    sim.run(4)
    assert sim.frames_run == 4
    assert sim.signature_bits() == 64
    sigs = sim.signatures
    assert set(sigs) == set(c.signals())
    # q and out are the same net values; signatures must coincide.
    assert sigs["q"] == sigs["out"]
    assert sigs["q"] != sigs["d"] or sigs["en"] == 0


def test_sequential_simulator_determinism():
    c = random_sequential_circuit(11)
    s1 = SequentialSimulator(c, width=32, seed=5).run(6)
    s2 = SequentialSimulator(c, width=32, seed=5).run(6)
    assert s1 == s2
    s3 = SequentialSimulator(c, width=32, seed=6).run(6)
    assert s1 != s3


def test_initial_state_respected():
    c = Circuit("init")
    c.add_input("x")
    c.add_register("r", "x", init=True)
    c.add_gate("o", GateType.BUF, ["r"])
    c.add_output("o")
    sim = SequentialSimulator(c, width=4, seed=0)
    values = sim.step()
    assert values["r"] == 0b1111


def test_ternary_known_matches_boolean():
    c = random_sequential_circuit(23)
    env_bool = {}
    env3 = {}
    rng = random.Random(1)
    for net in list(c.inputs) + list(c.registers):
        value = rng.random() < 0.5
        env_bool[net] = value
        env3[net] = tv_const(value)
    expected = reference_eval(c, env_bool)
    values3 = ternary_eval(c, env3)
    for net, (ones, zeros) in values3.items():
        assert (ones, zeros) == ((1, 0) if expected[net] else (0, 1)), net


def test_ternary_x_propagation():
    c = Circuit("tern")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("and_ab", GateType.AND, ["a", "b"])
    c.add_gate("or_ab", GateType.OR, ["a", "b"])
    c.add_gate("xor_ab", GateType.XOR, ["a", "b"])
    env = {"a": tv_const(False), "b": (0, 0)}  # b unknown
    values = ternary_eval(c, env)
    assert values["and_ab"] == (0, 1)   # 0 AND X = 0
    assert values["or_ab"] == (0, 0)    # 0 OR X = X
    assert values["xor_ab"] == (0, 0)   # 0 XOR X = X
    env = {"a": tv_const(True), "b": (0, 0)}
    values = ternary_eval(c, env)
    assert values["and_ab"] == (0, 0)   # 1 AND X = X
    assert values["or_ab"] == (1, 0)    # 1 OR X = 1


def test_x_initialized_fixpoint_self_initializing():
    # r always reloads constant 1: self-initializing regardless of start.
    c = Circuit("selfinit")
    c.add_input("x")
    c.add_gate("one", GateType.CONST1, [])
    c.add_register("r", "one", init=False)
    c.add_gate("o", GateType.BUF, ["r"])
    c.add_output("o")
    assert x_initialized_fixpoint(c) == {"r": True}


def test_x_initialized_fixpoint_stays_unknown():
    c = toggle_circuit()  # q depends on its own previous value: stays X
    assert x_initialized_fixpoint(c) == {"q": None}
