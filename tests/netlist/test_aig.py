"""AIG tests: construction, conversion, AIGER I/O, fraig SAT sweeping."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError, ParseError
from repro.netlist import Circuit, GateType, SequentialSimulator, single_eval
from repro.netlist.aig import (
    Aig,
    FALSE,
    TRUE,
    dumps_aag,
    fraig,
    from_circuit,
    lit_neg,
    loads_aag,
    to_circuit,
)

from .helpers import circuit_seeds, counter_circuit, random_sequential_circuit, toggle_circuit


# --------------------------------------------------------------- basic ops


def test_constants_and_literals():
    assert lit_neg(FALSE) == TRUE
    assert lit_neg(TRUE) == FALSE


def test_and2_rules():
    aig = Aig()
    a = aig.add_input("a")
    b = aig.add_input("b")
    assert aig.and2(a, FALSE) == FALSE
    assert aig.and2(a, TRUE) == a
    assert aig.and2(a, a) == a
    assert aig.and2(a, lit_neg(a)) == FALSE
    # Structural hashing: same AND created once, argument order irrelevant.
    g1 = aig.and2(a, b)
    g2 = aig.and2(b, a)
    assert g1 == g2
    assert aig.num_ands == 1


def test_or_xor_mux_semantics():
    aig = Aig()
    a = aig.add_input("a")
    b = aig.add_input("b")
    s = aig.add_input("s")
    o = aig.or2(a, b)
    x = aig.xor2(a, b)
    m = aig.mux(s, a, b)
    av, bv, sv = (lit := None), None, None  # readability only
    for va, vb, vs in itertools.product([0, 1], repeat=3):
        env = {1: va, 2: vb, 3: vs}
        _, lit_value = aig.simulate(env, width=1)
        assert lit_value(o) == (va | vb)
        assert lit_value(x) == (va ^ vb)
        assert lit_value(m) == (va if vs else vb)


def test_and_many():
    aig = Aig()
    lits = [aig.add_input("i{}".format(k)) for k in range(5)]
    conj = aig.and_many(lits)
    env_all = {v: 1 for v in aig.inputs}
    _, lit_value = aig.simulate(env_all, width=1)
    assert lit_value(conj) == 1
    env_one = dict(env_all)
    env_one[aig.inputs[2]] = 0
    _, lit_value = aig.simulate(env_one, width=1)
    assert lit_value(conj) == 0
    assert aig.and_many([]) == TRUE


def test_latch_api():
    aig = Aig()
    x = aig.add_input("x")
    q = aig.add_latch(init=True, name="q")
    aig.set_latch_next(q, x)
    aig.add_output(q)
    assert aig.latches[0][1] == x
    assert aig.latches[0][2] is True
    with pytest.raises(NetlistError):
        aig.set_latch_next(x, q)


def test_cleanup_drops_dangling():
    aig = Aig()
    a = aig.add_input("a")
    b = aig.add_input("b")
    keep = aig.and2(a, b)
    aig.and2(a, lit_neg(b))  # dangling
    aig.add_output(keep)
    dropped = aig.cleanup()
    assert dropped == 1
    assert aig.num_ands == 1


# --------------------------------------------------------------- conversion


@settings(max_examples=30, deadline=None)
@given(circuit_seeds)
def test_circuit_aig_round_trip(seed):
    circuit = random_sequential_circuit(seed)
    aig, lit_of = from_circuit(circuit)
    back = to_circuit(aig, name=circuit.name)
    sim_a = SequentialSimulator(circuit, width=32, seed=6)
    sim_b = SequentialSimulator(back, width=32, seed=6)
    sig_a = sim_a.run(10)
    sig_b = sim_b.run(10)
    for out_a, out_b in zip(circuit.outputs, back.outputs):
        assert sig_a[out_a] == sig_b[out_b]


def test_from_circuit_gate_types():
    c = Circuit("all_gates")
    c.add_input("a")
    c.add_input("b")
    for gtype in (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
                  GateType.XOR, GateType.XNOR):
        c.add_gate("g_{}".format(gtype.value), gtype, ["a", "b"])
        c.add_output("g_{}".format(gtype.value))
    c.add_gate("g_not", GateType.NOT, ["a"])
    c.add_output("g_not")
    c.add_gate("g_c1", GateType.CONST1, [])
    c.add_output("g_c1")
    aig, lit_of = from_circuit(c)
    for va in (False, True):
        for vb in (False, True):
            expected = single_eval(c, {"a": va, "b": vb}, {})
            env = {aig.inputs[0]: int(va), aig.inputs[1]: int(vb)}
            _, lit_value = aig.simulate(env, width=1)
            for net in c.outputs:
                assert bool(lit_value(lit_of[net])) == expected[net], net


def test_structural_sharing_across_gates():
    c = Circuit("share")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g1", GateType.AND, ["a", "b"])
    c.add_gate("g2", GateType.NAND, ["a", "b"])  # complement: same node
    c.add_output("g1")
    c.add_output("g2")
    aig, lit_of = from_circuit(c)
    assert aig.num_ands == 1
    assert lit_of["g2"] == lit_neg(lit_of["g1"])


# --------------------------------------------------------------- AIGER I/O


def test_aag_round_trip_semantics():
    circuit = counter_circuit(3)
    aig, _ = from_circuit(circuit)
    text = dumps_aag(aig)
    assert text.startswith("aag ")
    again = loads_aag(text)
    assert again.num_ands == aig.num_ands
    assert len(again.latches) == len(aig.latches)
    back = to_circuit(again)
    sim_a = SequentialSimulator(circuit, width=16, seed=3)
    sim_b = SequentialSimulator(back, width=16, seed=3)
    sig_a = sim_a.run(10)
    sig_b = sim_b.run(10)
    assert sig_a[circuit.outputs[0]] == sig_b[back.outputs[0]]


def test_aag_symbol_table():
    aig = Aig()
    aig.add_input("alpha")
    q = aig.add_latch(init=True, name="beta")
    aig.set_latch_next(q, TRUE)
    aig.add_output(q)
    text = dumps_aag(aig)
    assert "i0 alpha" in text
    assert "l0 beta" in text
    again = loads_aag(text)
    assert again.names[again.inputs[0]] == "alpha"
    assert again.latches[0][2] is True


def test_aag_parse_errors():
    with pytest.raises(ParseError):
        loads_aag("not an aig")
    with pytest.raises(ParseError):
        loads_aag("aag 1 1\n")
    with pytest.raises(ParseError):
        loads_aag("aag 1 1 0 0 0\n3\n")  # negated input


def test_aag_file_io(tmp_path):
    from repro.netlist.aig import dump_aag, load_aag

    circuit = toggle_circuit()
    aig, _ = from_circuit(circuit)
    path = tmp_path / "toggle.aag"
    dump_aag(aig, path)
    again = load_aag(path)
    assert again.num_ands == aig.num_ands


# --------------------------------------------------------------- fraig


def comb_circuit(seed, n_gates=14):
    return random_sequential_circuit(seed, n_inputs=4, n_regs=0,
                                     n_gates=n_gates)


def assert_aig_equiv(aig_a, aig_b, n_inputs, rounds=64):
    import random as pyrandom

    rng = pyrandom.Random(9)
    env_a = {v: rng.getrandbits(rounds) for v in aig_a.inputs}
    env_b = dict(zip(aig_b.inputs, (env_a[v] for v in aig_a.inputs)))
    _, lv_a = aig_a.simulate(env_a, width=rounds)
    _, lv_b = aig_b.simulate(env_b, width=rounds)
    for la, lb in zip(aig_a.outputs, aig_b.outputs):
        assert lv_a(la) == lv_b(lb)


@settings(max_examples=20, deadline=None)
@given(circuit_seeds)
def test_fraig_preserves_outputs(seed):
    circuit = comb_circuit(seed)
    aig, _ = from_circuit(circuit)
    reduced, lit_map = fraig(aig)
    assert_aig_equiv(aig, reduced, len(aig.inputs))
    assert reduced.num_ands <= aig.num_ands


def test_fraig_merges_functionally_equal_nodes():
    c = Circuit("dupfn")
    c.add_input("a")
    c.add_input("b")
    # Two structurally different, functionally equal computations of a&b.
    c.add_gate("g1", GateType.AND, ["a", "b"])
    c.add_gate("na", GateType.NOT, ["a"])
    c.add_gate("nb", GateType.NOT, ["b"])
    c.add_gate("g2", GateType.NOR, ["na", "nb"])
    c.add_gate("o", GateType.XOR, ["g1", "g2"])  # constant 0
    c.add_output("o")
    aig, _ = from_circuit(c)
    reduced, _ = fraig(aig)
    # The output collapses to the constant: no AND nodes remain.
    assert reduced.outputs[0] in (FALSE, TRUE)
    assert reduced.outputs[0] == FALSE
    assert reduced.num_ands == 0


def test_fraig_detects_antivalence():
    c = Circuit("anti")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g1", GateType.NAND, ["a", "b"])
    c.add_gate("g2", GateType.AND, ["a", "b"])
    c.add_gate("o", GateType.XNOR, ["g1", "g2"])  # constant 0
    c.add_output("o")
    aig, _ = from_circuit(c)
    reduced, _ = fraig(aig)
    assert reduced.outputs[0] == FALSE


def test_fraig_node_equal_to_input():
    c = Circuit("redund")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("ab", GateType.AND, ["a", "b"])
    c.add_gate("a_or_ab", GateType.OR, ["a", "ab"])  # absorption: == a
    c.add_output("a_or_ab")
    aig, _ = from_circuit(c)
    reduced, _ = fraig(aig)
    assert reduced.num_ands == 0
    assert reduced.outputs[0] == 2 * reduced.inputs[0]


def test_fraig_rejects_sequential():
    aig, _ = from_circuit(toggle_circuit())
    with pytest.raises(NetlistError):
        fraig(aig)


def test_fraig_as_cec():
    """fraig is a combinational equivalence checker: feed it a miter of an
    optimized circuit against the original and the output must fold to 0."""
    from repro.transform import optimize

    spec = comb_circuit(5)
    impl = optimize(spec, level=2, seed=77)
    aig = Aig()
    lit_of = {}
    for net in spec.inputs:
        lit_of[net] = aig.add_input(name=net)
    spec_aig, spec_lits = from_circuit(spec)
    impl_aig, impl_lits = from_circuit(impl)
    # Rebuild both inside one AIG over shared inputs.
    def embed(circuit):
        from repro.netlist.aig import _gate_to_aig

        local = dict(lit_of)
        for name in circuit.topo_order():
            gate = circuit.gates[name]
            local[name] = _gate_to_aig(
                aig, gate.gtype, [local[f] for f in gate.fanins]
            )
        return local

    spec_map = embed(spec)
    impl_map = embed(impl)
    diff_lits = [
        aig.xor2(spec_map[a], impl_map[b])
        for a, b in zip(spec.outputs, impl.outputs)
    ]
    miter = lit_neg(aig.and_many([lit_neg(d) for d in diff_lits]))
    aig.add_output(miter)
    reduced, _ = fraig(aig)
    assert reduced.outputs[0] == FALSE
