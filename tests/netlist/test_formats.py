""".bench and BLIF parsing/serialization tests."""

import pytest

from hypothesis import given, settings

from repro.errors import ParseError
from repro.netlist import GateType, SequentialSimulator, bench, blif

from .helpers import circuit_seeds, counter_circuit, random_sequential_circuit

S27_BENCH = """
# s27-like toy benchmark
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
G17 = NOT(G11)
"""


def test_bench_parse_s27():
    c = bench.loads(S27_BENCH, name="s27")
    assert c.name == "s27"
    assert len(c.inputs) == 4
    assert c.outputs == ["G17"]
    assert c.num_registers == 3
    assert c.num_gates == 10
    assert c.gates["G9"].gtype is GateType.NAND
    assert c.registers["G5"].data_in == "G10"
    assert c.registers["G5"].init is False


def test_bench_round_trip_preserves_behavior():
    original = bench.loads(S27_BENCH, name="s27")
    text = bench.dumps(original)
    reparsed = bench.loads(text, name="s27")
    sim_a = SequentialSimulator(original, width=32, seed=9).run(8)
    sim_b = SequentialSimulator(reparsed, width=32, seed=9).run(8)
    assert sim_a["G17"] == sim_b["G17"]


def test_bench_dff1_init():
    c = bench.loads("INPUT(a)\nOUTPUT(r)\nr = DFF1(a)\n")
    assert c.registers["r"].init is True
    assert "DFF1" in bench.dumps(c)


def test_bench_buff_alias_and_comments():
    c = bench.loads("INPUT(a) # in\nOUTPUT(b)\nb = BUFF(a)\n# trailing\n")
    assert c.gates["b"].gtype is GateType.BUF


def test_bench_syntax_errors():
    with pytest.raises(ParseError):
        bench.loads("WHAT(a)\n")
    with pytest.raises(ParseError):
        bench.loads("INPUT(a)\nb = FROB(a)\n")
    with pytest.raises(ParseError):
        bench.loads("INPUT(a)\nOUTPUT(missing)\n")
    with pytest.raises(ParseError):
        bench.loads("INPUT(a)\nr = DFF(a, a)\n")


def test_bench_file_io(tmp_path):
    c = counter_circuit(3)
    path = tmp_path / "counter.bench"
    bench.dump(c, path)
    loaded = bench.load(path)
    assert loaded.name == "counter"
    assert loaded.num_registers == 3


@settings(max_examples=30, deadline=None)
@given(circuit_seeds)
def test_bench_round_trip_random(seed):
    c = random_sequential_circuit(seed)
    reparsed = bench.loads(bench.dumps(c), name=c.name)
    sim_a = SequentialSimulator(c, width=16, seed=1).run(5)
    sim_b = SequentialSimulator(reparsed, width=16, seed=1).run(5)
    for out in c.outputs:
        assert sim_a[out] == sim_b[out]


BLIF_EXAMPLE = """
.model tiny
.inputs a b
.outputs f
.latch nf q 0
.names a b na_b
0- 1
-0 1
.names na_b q f
11 1
.names f nf
0 1
.end
"""


def test_blif_parse():
    c = blif.loads(BLIF_EXAMPLE)
    assert c.name == "tiny"
    assert c.inputs == ["a", "b"]
    assert c.outputs == ["f"]
    assert c.registers["q"].data_in == "nf"
    assert c.registers["q"].init is False


def test_blif_cover_semantics():
    # na_b is the off-set-style cover of NOT(a AND b) via two rows.
    c = blif.loads(BLIF_EXAMPLE)
    from repro.netlist import single_eval

    for a in (False, True):
        for b in (False, True):
            values = single_eval(c, {"a": a, "b": b}, {"q": True})
            assert values["na_b"] == (not (a and b))


def test_blif_constants():
    text = ".model k\n.outputs z o\n.names z\n.names o\n1\n.end\n"
    c = blif.loads(text)
    assert c.gates["z"].gtype is GateType.CONST0
    assert c.gates["o"].gtype is GateType.CONST1


def test_blif_errors():
    with pytest.raises(ParseError):
        blif.loads(".inputs a\n")  # before .model
    with pytest.raises(ParseError):
        blif.loads(".model m\n.names a b\n1 1 1\n.end\n")  # bad row
    with pytest.raises(ParseError):
        blif.loads(".model m\n.inputs a\n.names a f\n1 1\n0 0\n.end\n")  # mixed
    with pytest.raises(ParseError):
        blif.loads(".model m\n.latch x\n.end\n")


@settings(max_examples=30, deadline=None)
@given(circuit_seeds)
def test_blif_round_trip_random(seed):
    c = random_sequential_circuit(seed)
    reparsed = blif.loads(blif.dumps(c))
    sim_a = SequentialSimulator(c, width=16, seed=2).run(5)
    sim_b = SequentialSimulator(reparsed, width=16, seed=2).run(5)
    for out in c.outputs:
        assert sim_a[out] == sim_b[out]


def test_blif_file_io(tmp_path):
    c = counter_circuit(2)
    path = tmp_path / "c.blif"
    blif.dump(c, path)
    loaded = blif.load(path, name="counter")
    sim_a = SequentialSimulator(c, width=8, seed=4).run(6)
    sim_b = SequentialSimulator(loaded, width=8, seed=4).run(6)
    assert sim_a[c.outputs[0]] == sim_b[loaded.outputs[0]]


def test_cross_format_bench_to_blif():
    c = bench.loads(S27_BENCH, name="s27")
    reparsed = blif.loads(blif.dumps(c))
    sim_a = SequentialSimulator(c, width=16, seed=3).run(8)
    sim_b = SequentialSimulator(reparsed, width=16, seed=3).run(8)
    assert sim_a["G17"] == sim_b["G17"]
