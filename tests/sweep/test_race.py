"""Racing FRAIG strategies must never change what downstream engines see
beyond *which sound reduction* they get.

Every raced strategy's output is solver-certified merge by merge, so the
properties to pin are: the winner is a real :class:`FraigReduction` that
is bit-identical to the original circuit, ``race_fraig`` degrades to a
serial inline run when the pool is unavailable, the ``info`` dict is
honest about who raced and who won, and the ``fraig_sweep`` engine's
verdict is unchanged by ``race_workers``.
"""

import random

import pytest

from repro.netlist import CompiledSim
from repro.sweep import (
    DEFAULT_RACE_STRATEGIES,
    check_equivalence_fraig_sweep,
    race_fraig,
)
from repro.sweep import race as race_module

from ..netlist.helpers import random_sequential_circuit


def random_frames(circuit, n_frames, rng):
    return [
        {net: rng.randint(0, 1) for net in circuit.inputs}
        for _ in range(n_frames)
    ]


def test_race_winner_is_bit_identical_to_original():
    circuit = random_sequential_circuit(7, n_inputs=3, n_regs=4, n_gates=18)
    reduction, info = race_fraig(circuit, workers=2)
    rng = random.Random(0xACE)
    frames = random_frames(circuit, 6, rng)
    orig = CompiledSim(circuit).replay(circuit.initial_state(), frames)
    red = CompiledSim(reduction.reduced).replay(
        reduction.reduced.initial_state(), frames)
    for orig_frame, red_frame in zip(orig, red):
        for net in circuit.outputs:
            assert orig_frame[net] == red_frame[net]
    assert info["strategy"] in info["raced"]
    assert info["raced"] == [label for label, _ in DEFAULT_RACE_STRATEGIES]
    assert info["seconds"] >= 0


def test_race_info_reports_pool_size_or_serial_fallback():
    circuit = random_sequential_circuit(3)
    _, info = race_fraig(circuit, workers=2)
    # On a fork-capable host the pool raced; otherwise the serial
    # fallback is flagged with workers == 0.  Both are legal outcomes.
    assert info["workers"] in (0, 2)


def test_race_falls_back_serially_without_fork(monkeypatch):
    monkeypatch.delattr(race_module.os, "fork", raising=False)
    circuit = random_sequential_circuit(11)
    reduction, info = race_fraig(circuit, workers=2)
    assert info["workers"] == 0
    assert info["strategy"] == DEFAULT_RACE_STRATEGIES[0][0]
    assert reduction.reduced is not None


def test_race_requires_a_strategy():
    with pytest.raises(ValueError, match="at least one strategy"):
        race_fraig(random_sequential_circuit(1), strategies=[])


def test_single_strategy_race_matches_plain_reduce():
    """With one strategy the race is just fraig_reduce in a child; the
    reduction must match the serial run structurally (same merges)."""
    from repro.sweep import fraig_reduce

    circuit = random_sequential_circuit(19, n_gates=20)
    strategies = [("only", {"sim_rounds": 4, "sim_width": 64})]
    raced, info = race_fraig(circuit, strategies=strategies, workers=4)
    serial = fraig_reduce(circuit, sim_rounds=4, sim_width=64)
    assert info["strategy"] == "only"
    assert raced.stats["merges"] == serial.stats["merges"]
    assert raced.stats["ands_after"] == serial.stats["ands_after"]


def test_fraig_sweep_verdict_unchanged_by_racing():
    spec = random_sequential_circuit(23, n_inputs=3, n_regs=3, n_gates=14)
    baseline = check_equivalence_fraig_sweep(spec, spec)
    raced = check_equivalence_fraig_sweep(spec, spec, race_workers=2)
    assert baseline.equivalent is True
    assert raced.equivalent is True
    assert raced.method == "fraig_sweep"
    race_info = raced.details["fraig"].get("race")
    assert race_info is not None
    assert set(race_info) == {"spec", "impl"}


def test_fraig_sweep_rejects_negative_race_workers():
    spec = random_sequential_circuit(2)
    with pytest.raises(ValueError, match="race_workers"):
        check_equivalence_fraig_sweep(spec, spec, race_workers=-1)
