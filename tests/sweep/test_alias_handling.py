"""BUF/const-alias agreement between ``transform.optimize`` and the reducer.

Both cleanup paths claim the same alias semantics: BUF chains and double
negation collapse to their driver, explicit constants fold and dedupe.
For circuits whose *only* redundancy is of that kind, the light optimize
pipeline (level 1) and ``fraig_reduce`` must land on structurally
identical logic — pinned here by comparing post-``strash`` node counts.
Where the two legitimately differ (functional redundancy beyond
aliasing), FRAIG must be at least as strong, never weaker.
"""

import pytest

from repro.netlist import Circuit, GateType, single_eval, strash
from repro.sweep import fraig_reduce
from repro.transform import optimize


def buf_chain_circuit():
    c = Circuit("bufchain")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g1", GateType.AND, ["a", "b"])
    c.add_gate("b1", GateType.BUF, ["g1"])
    c.add_gate("b2", GateType.BUF, ["b1"])
    c.add_gate("n1", GateType.NOT, ["b2"])
    c.add_gate("n2", GateType.NOT, ["n1"])
    c.add_output("n2")
    return c.validate()


def const_alias_circuit():
    c = Circuit("constalias")
    c.add_input("a")
    c.add_gate("c0", GateType.CONST0, [])
    c.add_gate("c1", GateType.NOT, ["c0"])
    c.add_gate("g", GateType.AND, ["a", "c1"])  # = a
    c.add_gate("h", GateType.AND, ["a", "c0"])  # = 0
    c.add_output("g")
    c.add_output("h")
    return c.validate()


def double_negation_circuit():
    c = Circuit("dneg")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("n1", GateType.NOT, ["a"])
    c.add_gate("n2", GateType.NOT, ["n1"])
    c.add_gate("o", GateType.AND, ["n2", "b"])
    c.add_output("o")
    return c.validate()


ALIAS_CIRCUITS = [buf_chain_circuit, const_alias_circuit,
                  double_negation_circuit]


def strash_count(circuit):
    reduced, _ = strash(circuit)
    return reduced.num_gates


@pytest.mark.parametrize("build", ALIAS_CIRCUITS, ids=lambda f: f.__name__)
def test_alias_only_redundancy_lands_on_same_node_count(build):
    circuit = build()
    via_optimize = optimize(circuit, level=1)
    via_fraig = fraig_reduce(circuit).reduced
    assert strash_count(via_optimize) == strash_count(via_fraig)
    # Same function, too: exhaustive over the (tiny) input space.
    n = len(circuit.inputs)
    for bits in range(1 << n):
        env = {net: (bits >> i) & 1
               for i, net in enumerate(circuit.inputs)}
        vo = single_eval(via_optimize, env, {})
        vf = single_eval(via_fraig, env, {})
        # ``optimize`` may rename outputs to their representative net;
        # the reducer preserves names — so compare positionally.
        for o_net, f_net in zip(via_optimize.outputs, via_fraig.outputs):
            assert vo[o_net] == vf[f_net]


@pytest.mark.parametrize("build", ALIAS_CIRCUITS, ids=lambda f: f.__name__)
def test_fraig_never_weaker_than_light_optimize(build):
    circuit = build()
    assert (strash_count(fraig_reduce(circuit).reduced)
            <= strash_count(optimize(circuit, level=1)))


def test_constant_true_output_becomes_const1_gate():
    """Pins the AIG→circuit constant export: TRUE is a CONST1 gate.

    ``aig.to_circuit`` used to export constant-TRUE literals as
    ``NOT(CONST0)``, which the reducer's node accounting then disagreed
    with; the tautology below must now come back as a single CONST1.
    """
    c = Circuit("tautology")
    c.add_input("a")
    c.add_gate("na", GateType.NOT, ["a"])
    c.add_gate("o", GateType.OR, ["a", "na"])  # = 1
    c.add_output("o")
    c.validate()
    reduced = fraig_reduce(c).reduced
    kinds = {g.gtype for g in reduced.gates.values()}
    assert GateType.CONST1 in kinds
    assert GateType.NOT not in kinds
    for a in (0, 1):
        assert single_eval(reduced, {"a": a}, {})["o"] is True


def test_constant_false_output_becomes_const0_gate():
    c = Circuit("contradiction")
    c.add_input("a")
    c.add_gate("na", GateType.NOT, ["a"])
    c.add_gate("o", GateType.AND, ["a", "na"])  # = 0
    c.add_output("o")
    c.validate()
    reduced = fraig_reduce(c).reduced
    assert GateType.CONST0 in {g.gtype for g in reduced.gates.values()}
    for a in (0, 1):
        assert single_eval(reduced, {"a": a}, {})["o"] is False
