"""Differential layer: ``--preprocess fraig`` must never change a verdict.

Every engine is run twice on the same pair — once directly, once on the
FRAIG-reduced pair — and the verdicts must agree exactly (proved stays
proved, refuted stays refuted, inconclusive stays inconclusive).  For
refutations the counterexample is additionally replayed on the ORIGINAL
circuits: the reduction preserves the interface, so a trace found in the
reduced space must demonstrate a real output mismatch in the unreduced
one.  FRAIG-BMC (frame reduction inside the unrolling) is pinned the same
way against plain BMC: identical verdict, identical refutation depth,
replay-valid trace.
"""

import os

import pytest

from repro import verify
from repro.circuits import row_by_name
from repro.core.bmc import bmc_refute
from repro.fuzz.corpus import discover
from repro.fuzz.generate import build_pair, expected_label, make_recipe
from repro.fuzz.replay import replay_counterexample
from repro.netlist import build_product
from repro.sweep import fraig_bmc_refute

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "..", "corpus")

#: engine -> options kept small enough for tier-1.
ENGINES = [
    ("van_eijk", {}),
    ("sat_sweep", {"sim_frames": 16, "sim_width": 16}),
    ("k_induction", {"max_depth": 16}),
    ("bmc", {"max_depth": 6}),
]

ROWS = ["s386", "s510"]


def both_verdicts(spec, impl, method, options, match_outputs="order"):
    direct = verify(spec, impl, method=method, match_outputs=match_outputs,
                    **options)
    pre = verify(spec, impl, method=method, match_outputs=match_outputs,
                 preprocess="fraig", **options)
    assert "preprocess" in pre.details
    return direct, pre


@pytest.mark.parametrize("row_name", ROWS)
@pytest.mark.parametrize("method,options", ENGINES,
                         ids=[m for m, _ in ENGINES])
def test_table1_rows_verdict_identical(row_name, method, options):
    spec, impl = row_by_name(row_name).pair(optimize_level=1)
    direct, pre = both_verdicts(spec, impl, method, options)
    assert direct.equivalent == pre.equivalent


def test_traversal_verdict_identical_on_small_row():
    spec, impl = row_by_name("s386").pair(optimize_level=1)
    direct, pre = both_verdicts(spec, impl, "traversal", {})
    assert direct.equivalent is True
    assert pre.equivalent is True


def corpus_entries():
    return list(discover(CORPUS_DIR))


@pytest.mark.parametrize("entry", corpus_entries(), ids=lambda e: e.id)
def test_corpus_entries_verdict_identical(entry):
    spec, impl = build_pair(entry.recipe)
    for method, options in (("van_eijk", {}), ("bmc", {"max_depth": 10})):
        direct, pre = both_verdicts(spec, impl, method, options)
        assert direct.equivalent == pre.equivalent, method


def inequivalent_recipes(count=3):
    """First ``count`` fuzz recipes whose label is known-inequivalent."""
    found, seed = [], 0
    while len(found) < count and seed < 400:
        recipe = make_recipe(seed)
        if expected_label(recipe) == "inequivalent":
            found.append(recipe)
        seed += 1
    assert len(found) == count
    return found


def _recipe_id(recipe):
    if "base" in recipe:
        return recipe["base"]["name"]
    return "dp_{}".format(recipe["datapath"]["family"])


@pytest.mark.parametrize("recipe", inequivalent_recipes(),
                         ids=_recipe_id)
def test_refutations_replay_on_original_circuits(recipe):
    spec, impl = build_pair(recipe)
    direct, pre = both_verdicts(spec, impl, "bmc", {"max_depth": 16})
    assert direct.equivalent is False
    assert pre.equivalent is False
    # Both traces must demonstrate a real mismatch on the ORIGINAL pair —
    # the preprocessed trace in particular was found in the reduced space.
    for result in (direct, pre):
        report = replay_counterexample(spec, impl, result.counterexample,
                                       match_inputs="name",
                                       match_outputs="order")
        assert report.valid, report.reason


@pytest.mark.parametrize("seed", [2, 5, 14])
def test_fraig_bmc_matches_plain_bmc(seed):
    recipe = make_recipe(seed)
    spec, impl = build_pair(recipe)
    product = build_product(spec, impl, match_inputs="name",
                            match_outputs="order")
    plain = bmc_refute(product, max_depth=12)
    fraig = fraig_bmc_refute(product, max_depth=12)
    assert plain.equivalent == fraig.equivalent
    if plain.equivalent is False:
        assert plain.iterations == fraig.iterations  # same refutation depth
        report = replay_counterexample(spec, impl, fraig.counterexample,
                                       match_inputs="name",
                                       match_outputs="order")
        assert report.valid, report.reason


def test_fraig_bmc_via_verify_option():
    recipe = make_recipe(14)
    spec, impl = build_pair(recipe)
    direct = verify(spec, impl, method="bmc", max_depth=12)
    framed = verify(spec, impl, method="bmc", max_depth=12,
                    fraig_frames=True)
    assert direct.equivalent == framed.equivalent
    assert "fraig_frames" in framed.details
