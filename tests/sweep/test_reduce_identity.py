"""The FRAIG reducer must be invisible to every observer.

Three properties pin the preprocessor's soundness contract:

* **Bit-identity** — the reduced circuit, started from the same initial
  state and fed the same input frames, produces bit-identical output
  streams (registers are treated as free pseudo-inputs during sweeping,
  so every merge holds in *all* states, not just reachable ones).
* **Determinism** — merges always go to the topologically-first member
  of an equivalence class and the sweep runs to completion, so the
  reduced circuit's structural fingerprint is independent of the
  simulation seed and stable across repeated runs.
* **Witness honesty** — the net map must relate every original net to
  its surviving representative (possibly negated, possibly a constant),
  and that relation must hold cycle by cycle under simulation.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.netlist import CompiledSim, structural_fingerprint
from repro.sweep import fraig_reduce

from ..netlist.helpers import random_sequential_circuit

import pytest


def random_frames(circuit, n_frames, rng):
    return [
        {net: rng.randint(0, 1) for net in circuit.inputs}
        for _ in range(n_frames)
    ]


def replay_pair(original, reduced, frames):
    """Replay the same stimulus on both circuits; return per-frame dicts."""
    orig = CompiledSim(original).replay(original.initial_state(), frames)
    red = CompiledSim(reduced).replay(reduced.initial_state(), frames)
    return orig, red


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_reduced_circuit_is_bit_identical(seed):
    circuit = random_sequential_circuit(seed, n_inputs=3, n_regs=4,
                                        n_gates=18)
    reduction = fraig_reduce(circuit)
    reduced = reduction.reduced

    # The interface is preserved verbatim: same input/output names in the
    # same order, same registers with the same initial values.
    assert list(reduced.inputs) == list(circuit.inputs)
    assert list(reduced.outputs) == list(circuit.outputs)
    assert list(reduced.registers) == list(circuit.registers)
    assert reduced.initial_state() == circuit.initial_state()

    rng = random.Random(seed ^ 0xBEEF)
    frames = random_frames(circuit, 8, rng)
    orig, red = replay_pair(circuit, reduced, frames)
    for t, (fo, fr) in enumerate(zip(orig, red)):
        for net in circuit.outputs:
            assert fo[net] == fr[net], (
                "frame {} output {} diverged".format(t, net))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_reduction_never_grows_the_circuit(seed):
    circuit = random_sequential_circuit(seed, n_inputs=3, n_regs=3,
                                        n_gates=24)
    reduction = fraig_reduce(circuit)
    assert reduction.stats["ands_after"] <= reduction.stats["ands_before"]
    assert reduction.reduced.num_registers == circuit.num_registers


@pytest.mark.parametrize("circuit_seed", [7, 99, 4242])
def test_fingerprint_independent_of_simulation_seed(circuit_seed):
    circuit = random_sequential_circuit(circuit_seed, n_inputs=3, n_regs=4,
                                        n_gates=20)
    prints = {
        structural_fingerprint(fraig_reduce(circuit, seed=s).reduced)
        for s in (1, 2, 3, 2024)
    }
    assert len(prints) == 1


def test_fingerprint_stable_across_repeated_runs():
    circuit = random_sequential_circuit(31337, n_inputs=4, n_regs=5,
                                        n_gates=22)
    first = fraig_reduce(circuit)
    second = fraig_reduce(circuit)
    assert (structural_fingerprint(first.reduced)
            == structural_fingerprint(second.reduced))
    assert first.stats["merges"] == second.stats["merges"]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_witness_map_holds_under_simulation(seed):
    circuit = random_sequential_circuit(seed, n_inputs=3, n_regs=3,
                                        n_gates=16)
    reduction = fraig_reduce(circuit)
    rng = random.Random(seed ^ 0xF00D)
    frames = random_frames(circuit, 6, rng)
    orig, red = replay_pair(circuit, reduction.reduced, frames)

    for net, entry in reduction.net_map.items():
        for fo, fr in zip(orig, red):
            if net not in fo:
                continue
            if entry["const"] is not None:
                assert fo[net] == entry["const"], net
            elif entry["net"] is not None and entry["net"] in fr:
                expect = fr[entry["net"]] ^ (1 if entry["negated"] else 0)
                assert fo[net] == expect, net


def test_translate_trace_is_checked_identity():
    from repro.reach.result import CexTrace

    circuit = random_sequential_circuit(11, n_inputs=2, n_regs=2, n_gates=10)
    reduction = fraig_reduce(circuit)
    frame = {net: 0 for net in circuit.inputs}
    trace = CexTrace([frame], frame)
    assert reduction.translate_trace(trace) is trace
    assert reduction.translate_trace(None) is None
    bogus = CexTrace([], {"no_such_input": 1})
    with pytest.raises(NetlistError):
        reduction.translate_trace(bogus)
