"""Regression corpus replay: every persisted fuzz finding must stay fixed.

Each ``tests/corpus/*.json`` file is a shrunk fuzz recipe (written by
``repro-sec fuzz`` or seeded by hand) together with its expected verdict.
This module auto-discovers them and re-runs the full engine battery on each
— inline, as part of the tier-1 suite — so a disagreement that was once
found and fixed can never silently come back.  To add a regression, drop
the corpus file produced by the fuzzer into this directory; nothing else
to register.
"""

import os

import pytest

from repro.fuzz import discover, verify_entry
from repro.fuzz.generate import build_pair

CORPUS_DIR = os.path.dirname(os.path.abspath(__file__))

ENTRIES = discover(CORPUS_DIR)


def test_corpus_is_not_empty():
    # The repo ships seeded baseline entries; an empty corpus means
    # discovery itself is broken (e.g. the glob or this path moved).
    assert ENTRIES


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.id)
def test_entry_rebuilds_deterministically(entry):
    spec, impl = build_pair(entry.recipe)
    spec2, impl2 = build_pair(entry.recipe)
    assert spec.stats() == spec2.stats()
    assert impl.stats() == impl2.stats()
    assert entry.expected in ("equivalent", "inequivalent")


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.id)
def test_entry_stays_fixed(entry):
    findings = verify_entry(entry)
    assert findings == [], "regression reopened: {}".format(
        [f.as_dict() for f in findings])
