"""Two-level minimizer tests."""

from hypothesis import given, settings, strategies as st

from repro.transform import eval_cover, minterms_to_cubes


def test_empty_onset():
    assert minterms_to_cubes([], 3) == []


def test_full_onset_is_tautology():
    assert minterms_to_cubes(list(range(8)), 3) == ["---"]


def test_single_minterm():
    cubes = minterms_to_cubes([5], 3)  # 101
    assert cubes == ["101"]


def test_classic_merge():
    # f = m0 + m1 over 2 vars = a'
    cubes = minterms_to_cubes([0, 1], 2)
    assert cubes == ["0-"]


def test_zero_width():
    assert minterms_to_cubes([0], 0) == [""]


@settings(max_examples=150, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.sets(st.integers(min_value=0, max_value=31)),
)
def test_cover_matches_onset(width, raw_minterms):
    minterms = {m for m in raw_minterms if m < (1 << width)}
    cubes = minterms_to_cubes(sorted(minterms), width)
    for pattern in range(1 << width):
        bits = [(pattern >> i) & 1 for i in range(width)]
        # Cube characters are MSB-first relative to format(); keep consistent:
        ordered = [bool((pattern >> (width - 1 - i)) & 1) for i in range(width)]
        assert eval_cover(cubes, ordered) == (pattern in minterms)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=2, max_value=5),
    st.sets(st.integers(min_value=0, max_value=31), min_size=2),
)
def test_cover_is_no_larger_than_onset(width, raw_minterms):
    minterms = sorted(m for m in raw_minterms if m < (1 << width))
    if not minterms:
        return
    cubes = minterms_to_cubes(minterms, width)
    assert len(cubes) <= len(minterms)
