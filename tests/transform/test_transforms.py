"""Behaviour-preservation property tests for every transformation pass."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TransformError
from repro.netlist import Circuit, GateType, SequentialSimulator
from repro.transform import (
    associative_regroup,
    backward_movable_registers,
    backward_retime_register,
    cone_resynthesize,
    constant_fold,
    demorgan_rewrite,
    forward_movable_gates,
    forward_retime_gate,
    inject_distinguishable_fault,
    inject_fault,
    obfuscate_names,
    optimize,
    remove_double_negation,
    retime,
    sweep,
    synthesize,
    xor_expand,
    xor_reencode,
    xor_reencode_pair,
)

from ..netlist.helpers import (
    circuit_seeds,
    counter_circuit,
    random_sequential_circuit,
    toggle_circuit,
)


def assert_sequentially_equal(a, b, frames=16, width=64, seed=12):
    """Output signatures must coincide (positional output matching)."""
    sim_a = SequentialSimulator(a, width=width, seed=seed)
    sim_b = SequentialSimulator(b, width=width, seed=seed)
    sig_a = sim_a.run(frames)
    sig_b = sim_b.run(frames)
    assert len(a.outputs) == len(b.outputs)
    for out_a, out_b in zip(a.outputs, b.outputs):
        assert sig_a[out_a] == sig_b[out_b], (out_a, out_b)


PASSES = [
    ("constant_fold", lambda c: constant_fold(c)),
    ("double_neg", lambda c: remove_double_negation(c)),
    ("sweep", lambda c: sweep(c)),
    ("demorgan", lambda c: demorgan_rewrite(c, seed=5, fraction=1.0)),
    ("assoc", lambda c: associative_regroup(c, seed=6)),
    ("xor_expand", lambda c: xor_expand(c, seed=7, fraction=1.0)),
    ("cone_resynth", lambda c: cone_resynthesize(c, seed=8, fraction=1.0)),
    ("obfuscate", lambda c: obfuscate_names(c, seed=9)),
]


@pytest.mark.parametrize("label,pass_fn", PASSES, ids=[p[0] for p in PASSES])
@settings(max_examples=25, deadline=None)
@given(circuit_seeds)
def test_pass_preserves_behavior(label, pass_fn, seed):
    circuit = random_sequential_circuit(seed)
    transformed = pass_fn(circuit)
    transformed.validate()
    assert_sequentially_equal(circuit, transformed)


def test_constant_fold_removes_constants():
    c = Circuit("k")
    c.add_input("a")
    c.add_gate("one", GateType.CONST1, [])
    c.add_gate("g", GateType.AND, ["a", "one"])
    c.add_gate("o", GateType.NOT, ["g"])
    c.add_output("o")
    folded = constant_fold(c)
    # g collapses to BUF(a); 'one' becomes dead and is swept.
    assert "one" not in folded.gates
    assert folded.gates["g"].gtype in (GateType.BUF,)
    assert_sequentially_equal(c, folded)


def test_constant_fold_to_constant_output():
    c = Circuit("k2")
    c.add_input("a")
    c.add_gate("zero", GateType.CONST0, [])
    c.add_gate("g", GateType.AND, ["a", "zero"])
    c.add_output("g")
    folded = constant_fold(c)
    assert folded.gates["g"].gtype is GateType.CONST0
    assert_sequentially_equal(c, folded)


def test_xor_with_constant_folds_to_not():
    c = Circuit("k3")
    c.add_input("a")
    c.add_gate("one", GateType.CONST1, [])
    c.add_gate("g", GateType.XOR, ["a", "one"])
    c.add_output("g")
    folded = constant_fold(c)
    assert folded.gates["g"].gtype is GateType.NOT
    assert_sequentially_equal(c, folded)


def test_sweep_keeps_register_feeding_logic():
    c = toggle_circuit()
    swept = sweep(c)
    assert set(swept.gates) == set(c.gates)


def test_demorgan_changes_structure():
    c = random_sequential_circuit(42)
    rewritten = demorgan_rewrite(c, seed=1, fraction=1.0)
    and_or = [
        g for g in c.gates.values()
        if g.gtype in (GateType.AND, GateType.OR)
    ]
    if and_or:
        assert rewritten.num_gates > c.num_gates


def test_obfuscate_renames_everything_but_inputs():
    c = toggle_circuit()
    renamed = obfuscate_names(c, seed=0)
    assert renamed.inputs == c.inputs
    assert "q" not in renamed.registers
    assert renamed.num_gates == c.num_gates
    assert_sequentially_equal(c, renamed)


# ------------------------------------------------------------------ retiming


def test_forward_movable_detection():
    c = Circuit("fm")
    c.add_input("x")
    c.add_register("r1", "x", init=True)
    c.add_register("r2", "x", init=False)
    c.add_gate("g", GateType.AND, ["r1", "r2"])
    c.add_gate("h", GateType.AND, ["r1", "x"])  # mixed fanins: not movable
    c.add_output("g")
    c.add_output("h")
    assert forward_movable_gates(c) == ["g"]


def test_forward_retime_init_value():
    c = Circuit("fi")
    c.add_input("x")
    c.add_register("r1", "x", init=True)
    c.add_register("r2", "x", init=True)
    c.add_gate("g", GateType.NAND, ["r1", "r2"])
    c.add_output("g")
    new_reg = forward_retime_gate(c.copy() if False else c, "g")
    assert c.registers[new_reg].init is False  # NAND(1,1) = 0
    c.validate()


def test_forward_retime_preserves_behavior():
    c = Circuit("fb")
    c.add_input("x")
    c.add_input("y")
    c.add_register("r1", "x", init=False)
    c.add_register("r2", "y", init=True)
    c.add_gate("g", GateType.XOR, ["r1", "r2"])
    c.add_output("g")
    retimed = c.copy()
    forward_retime_gate(retimed, "g")
    retimed = sweep(retimed)
    retimed.validate()
    assert retimed.num_registers == 1
    assert_sequentially_equal(c, retimed)


def test_forward_retime_self_loop():
    # Gate over a register that the gate itself feeds (sequential loop).
    c = Circuit("loop")
    c.add_input("x")
    c.add_register("r", "g", init=False)
    c.add_gate("g", GateType.XOR, ["r", "r2"])
    c.add_register("r2", "x", init=False)
    c.add_output("g")
    retimed = c.copy()
    forward_retime_gate(retimed, "g")
    retimed = sweep(retimed)
    retimed.validate()
    assert_sequentially_equal(c, retimed)


def test_backward_retime_preserves_behavior():
    c = Circuit("bb")
    c.add_input("x")
    c.add_input("y")
    c.add_gate("g", GateType.OR, ["x", "y"])
    c.add_register("r", "g", init=False)
    c.add_gate("o", GateType.NOT, ["r"])
    c.add_output("o")
    assert backward_movable_registers(c) == ["r"]
    moved = c.copy()
    backward_retime_register(moved, "r")
    moved = sweep(moved)
    moved.validate()
    assert moved.num_registers == 2
    assert_sequentially_equal(c, moved)


def test_backward_retime_rejects_impossible_init():
    c = Circuit("bi")
    c.add_input("x")
    c.add_gate("g", GateType.XOR, ["x", "x"])  # constant 0 function
    c.add_register("r", "g", init=False)
    c.add_output("r")
    # XOR(a, a) can't produce 1... but the mover treats fanins independently,
    # so init (0,1) works for target 1; target 0 also works with (0,0).
    assert "r" in backward_movable_registers(c)
    impossible = Circuit("bi2")
    impossible.add_input("x")
    impossible.add_gate("g", GateType.AND, ["x"])
    impossible.registers == {}
    # An AND that must produce 1 with no fanins cannot exist; simulate the
    # error path via a register whose driving gate is missing instead.
    with pytest.raises(TransformError):
        backward_retime_register(c, "nonexistent")


@settings(max_examples=20, deadline=None)
@given(circuit_seeds, st.integers(min_value=1, max_value=6))
def test_retime_random_preserves_behavior(seed, moves):
    circuit = random_sequential_circuit(seed)
    retimed = retime(circuit, moves=moves, seed=seed + 1)
    assert_sequentially_equal(circuit, retimed, frames=20)


def test_retime_counter_forward_only():
    c = counter_circuit(4)
    retimed = retime(c, moves=3, seed=0, direction="forward")
    assert_sequentially_equal(c, retimed, frames=40)


# ------------------------------------------------------------------ encoding


def test_xor_reencode_pair_behavior():
    c = counter_circuit(3)
    encoded = c.copy()
    xor_reencode_pair(encoded, "q0", "q1")
    encoded.validate()
    assert "q1" not in encoded.registers
    assert_sequentially_equal(c, encoded, frames=30)


@settings(max_examples=20, deadline=None)
@given(circuit_seeds, st.integers(min_value=1, max_value=3))
def test_xor_reencode_preserves_behavior(seed, pairs):
    circuit = random_sequential_circuit(seed, n_regs=4)
    encoded = xor_reencode(circuit, pairs=pairs, seed=seed)
    assert_sequentially_equal(circuit, encoded, frames=16)


def test_xor_reencode_errors():
    c = counter_circuit(2)
    with pytest.raises(TransformError):
        xor_reencode_pair(c, "q0", "q0")
    with pytest.raises(TransformError):
        xor_reencode_pair(c, "q0", "d0")


# ------------------------------------------------------------------ pipeline


@settings(max_examples=15, deadline=None)
@given(circuit_seeds)
def test_optimize_level2_preserves_behavior(seed):
    circuit = random_sequential_circuit(seed, n_gates=14)
    optimized = optimize(circuit, level=2, seed=seed)
    assert_sequentially_equal(circuit, optimized, frames=16)


def test_optimize_level0_is_identity():
    c = toggle_circuit()
    same = optimize(c, level=0)
    assert set(same.gates) == set(c.gates)


def test_optimize_bad_level():
    with pytest.raises(TransformError):
        optimize(toggle_circuit(), level=9)


@settings(max_examples=10, deadline=None)
@given(circuit_seeds)
def test_synthesize_pipeline_preserves_behavior(seed):
    circuit = random_sequential_circuit(seed, n_gates=12)
    impl = synthesize(circuit, retime_moves=3, optimize_level=2, seed=seed)
    assert_sequentially_equal(circuit, impl, frames=24)


def test_synthesize_destroys_names():
    c = counter_circuit(4)
    impl = synthesize(c, retime_moves=2, optimize_level=2, seed=3)
    shared = set(impl.gates) & set(c.gates)
    assert not shared


# ------------------------------------------------------------------ mutation


def test_inject_fault_kinds():
    c = counter_circuit(3)
    seen = set()
    for seed in range(30):
        _, description = inject_fault(c, seed=seed)
        seen.add(description.split(":")[0])
    assert "type_swap" in seen or "negate_fanin" in seen
    assert "init_flip" in seen


def test_inject_distinguishable_fault_differs():
    c = counter_circuit(3)
    mutated, description = inject_distinguishable_fault(c, seed=1)
    sim_a = SequentialSimulator(c, width=64, seed=2).run(32)
    sim_b = SequentialSimulator(mutated, width=64, seed=2).run(32)
    assert any(
        sim_a[o1] != sim_b[o2]
        for o1, o2 in zip(c.outputs, mutated.outputs)
    )


def test_inject_fault_empty_circuit():
    c = Circuit("empty")
    c.add_input("x")
    with pytest.raises(TransformError):
        inject_fault(c)
