"""The fuzzer's oracle assumptions, proven against the reachability baseline.

The differential fuzzer labels every generated pair from its construction
recipe alone: chains of ``retime``/``optimize``/``xor_reencode`` are assumed
equivalence-preserving, ``inject_distinguishable_fault`` is assumed to break
equivalence.  Those assumptions are what every other fuzz verdict is judged
against, so here they are discharged exactly: the complete traversal engine
must *prove* each equivalence-preserving chain and *refute* each fault, on
circuits small enough for exhaustive reachability.
"""

import pytest

from repro.circuits.generators import generate_benchmark
from repro.fuzz.generate import _EQUIV_CHAINS, apply_transform
from repro.fuzz.replay import validate_refutation
from repro.netlist.product import build_product
from repro.reach.traversal import check_equivalence_traversal
from repro.transform import inject_distinguishable_fault


def _base(seed, n_regs=5):
    return generate_benchmark("orc{}".format(seed), n_regs=n_regs,
                              n_inputs=3, n_outputs=2, seed=seed)


def _check(spec, impl):
    product = build_product(spec, impl, match_inputs="name",
                            match_outputs="order")
    return check_equivalence_traversal(product)


@pytest.mark.parametrize("chain", _EQUIV_CHAINS,
                         ids=lambda c: "+".join(c))
def test_equivalence_preserving_chains_are_proven_equivalent(chain):
    spec = _base(seed=17)
    impl = spec
    for step_seed, kind in enumerate(chain):
        impl = apply_transform(impl, {"kind": kind, "seed": step_seed})
    result = _check(spec, impl)
    assert result.proved, "{} broke equivalence: {!r}".format(chain, result)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_distinguishable_fault_is_proven_inequivalent(seed):
    spec = _base(seed=seed)
    impl, description = inject_distinguishable_fault(spec, seed=seed)
    assert description
    result = _check(spec, impl)
    assert result.refuted
    # The traversal's own counterexample must satisfy the replay oracle —
    # the two ground truths (BDD reachability, concrete simulation) agree.
    report = validate_refutation(spec, impl, result)
    assert report.valid


def test_fault_on_top_of_equivalent_chain_is_inequivalent():
    spec = _base(seed=23, n_regs=4)
    impl = apply_transform(spec, {"kind": "retime", "seed": 1, "moves": 2})
    impl = apply_transform(impl, {"kind": "optimize", "seed": 1})
    impl = apply_transform(impl, {"kind": "fault", "seed": 2})
    result = _check(spec, impl)
    assert result.refuted
    assert validate_refutation(spec, impl, result).valid
